//! The event-driven `reactor` backend: N node tasks on M worker threads.
//!
//! The thread backend burns one OS thread per node, which caps
//! deployments at a few dozen nodes; the reactor multiplexes thousands
//! of [`NodeCore`] state machines onto a small persistent worker pool —
//! the same long-lived-workers-fed-by-channels pattern as the sharded
//! simulator's lane pool (`crates/sim/src/shard.rs`), adapted from
//! "whole lanes per window" to "one node task per wakeup".
//!
//! ```text
//!             ┌────────────┐  NetCommand (Send/Broadcast)
//!   handlers ─┤  network   │◄───────────────────────────┐
//!             │  thread    │                             │
//!             └─────┬──────┘ deliver: inbox push + wake  │
//!                   ▼                                    │
//!  ┌───────────────────────────────┐               ┌─────┴─────┐
//!  │ per-node cells                │   ready queue │  workers  │
//!  │  inbox: Mutex<Vec<NodeEvent>> │──────────────►│  (M long- │
//!  │  queued: AtomicBool           │  (crossbeam   │   lived   │
//!  │  core: Mutex<Option<NodeCore>>│   channel;    │  threads, │
//!  └───────────────────────────────┘   workers     │  parked   │
//!                   ▲                  park on     │  on recv) │
//!                   │ wake at deadline  recv)      └─────┬─────┘
//!             ┌─────┴──────┐                             │
//!             │   timer    │◄────────────────────────────┘
//!             │   thread   │  register(node, Instant)
//!             │ hashed     │
//!             │ timer wheel│
//!             └────────────┘
//! ```
//!
//! * **Cells and the ready queue.** Each node is a cell: an inbox, a
//!   `queued` flag, and its [`NodeCore`]. Anyone with an event for the
//!   node (network thread, timer thread, harness) pushes it into the
//!   inbox and *schedules* the cell — a compare-and-swap on `queued`
//!   plus, if it was idle, one send on the shared ready channel. Workers
//!   block on that channel (crossbeam parks them when it is empty), pop
//!   a node index, drain the node's inbox in batches through the same
//!   `NodeCore` handler code the thread backend uses, fire its due
//!   timers, and clear `queued`. The flag guarantees a node is never on
//!   the ready queue twice, so a node's handlers are always executed
//!   sequentially — the [`Automaton`] contract — without per-node locks
//!   being contended.
//! * **Timers.** `SetTimer` deadlines stay node-local (each `NodeCore`
//!   keeps its own heap, as under the thread backend); the reactor only
//!   needs to know *when to wake the node next*. After running a node,
//!   the worker registers the node's earliest deadline with the timer
//!   thread, which multiplexes all N wakeups through one hashed
//!   [`TimerWheel`](crate::wheel::TimerWheel) and re-schedules each node
//!   as its tick expires. Wheel granularity is derived from `u` (a wake
//!   can be late by at most one tick, which is indistinguishable from
//!   host scheduling jitter and is folded into the same "real hardware
//!   inflates `u`" caveat as everything else in this crate).
//! * **Fairness.** A worker processes at most [`BATCH_EVENTS`] events
//!   per scheduling; if the inbox still has more (or grew while the
//!   worker was clearing the flag), the cell is re-scheduled at the back
//!   of the ready queue, so one hot node cannot starve 2047 others.
//! * **Supervision.** A handler panic is contained per event: the
//!   outbox rolls back to its pre-event state, the unprocessed tail of
//!   the batch is re-spliced to the *front* of the node's inbox (no
//!   event lost, none delivered twice), and the panic is counted — then
//!   the worker carrying it dies and a dedicated supervisor thread
//!   respawns a replacement that adopts the same ready queue, so the
//!   dead worker's backlog is picked up by the pool. A watchdog thread
//!   scans per-node heartbeat slots (each node's next registered timer
//!   deadline) and re-schedules nodes whose deadline is long overdue —
//!   the signature of a wakeup lost to a wedged scheduler. Faults
//!   beyond the `⌊(n − 1)/2⌋` budget flip the run into logged, degraded
//!   mode; nothing aborts.
//! * **Shutdown.** The harness pushes `Shutdown` into every inbox,
//!   schedules every cell, then enqueues one sentinel per worker.
//!   Channel FIFO order means every pre-shutdown wakeup drains first;
//!   workers exit on the sentinel, then the supervisor, network, timer
//!   and watchdog threads are joined, and the pulse logs are harvested
//!   from the cells with everything quiescent — no lock is ever held
//!   while converting.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{self, Receiver, Sender};
use crusader_crypto::{KeyRing, NodeId};
use crusader_sim::Automaton;
use crusader_time::Dur;
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::Rng;

use crate::clock::EmulatedClock;
use crate::harness::{BackendRun, RuntimeConfig};
use crate::net::{NetChaos, NetCommand, NetLink, Network, NodeEvent};
use crate::node::{NodeCore, Outbox};
use crate::supervise::{self, Counters, Heartbeats};
use crate::wheel::{TimerWheel, WheelKey};

/// Max events one scheduling quantum may process before the node goes
/// back to the end of the ready queue.
const BATCH_EVENTS: usize = 256;

/// Ready-queue sentinel telling a worker to exit.
const STOP: u32 = u32::MAX;

/// Ready-queue sentinel telling a worker to drain the urgent lane.
const KICK: u32 = u32::MAX - 1;

/// Slot count of the per-run hashed timer wheel.
const WHEEL_SLOTS: usize = 256;

/// Wheel tick granularity: fine enough that the ≤ 1-tick wake lateness
/// is small against the delay uncertainty `u` (protocol deadlines
/// compound two or three timer hops, so lateness must be ≪ the slack
/// `u` provides), coarse enough that the timer thread is not spinning.
/// Clamped to `[50 µs, 1 ms]`.
fn wheel_granularity_ns(u: Dur, d: Dur) -> u64 {
    let base = (u.min(d) / 64.0).as_nanos();
    let clamped = base.clamp(50_000.0, 1_000_000.0);
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    {
        clamped as u64
    }
}

struct Cell<A: Automaton> {
    inbox: Mutex<Vec<NodeEvent<A::Msg>>>,
    queued: AtomicBool,
    /// Whether the timer wheel currently holds a wakeup for this node.
    /// Set by the worker when it registers a deadline, cleared by the
    /// timer thread when the entry fires. Guards against the lost-wakeup
    /// race where the wheel fires *while* the node is mid-run (the
    /// `queued` flag swallows the schedule): the worker's post-run
    /// recheck sees `armed == false` with a deadline still pending and
    /// re-schedules itself.
    wheel_armed: AtomicBool,
    /// `None` for silent (crashed-from-start) nodes. Locked only by the
    /// single worker currently running the node (the `queued` protocol
    /// makes that exclusive), so never contended.
    core: Mutex<Option<NodeCore<A>>>,
}

struct Shared<A: Automaton> {
    cells: Vec<Cell<A>>,
    /// Immutable after construction: `false` for silent nodes, so the
    /// delivery path never touches a cell's `core` lock.
    active: Vec<bool>,
    ready_tx: Sender<u32>,
    /// Deadline wakeups jump the message backlog: workers drain this
    /// lane before taking the next ready-queue entry. Without it, a
    /// timer wake waits FIFO behind every queued node's message batch —
    /// milliseconds of protocol-visible timer lateness under an echo
    /// storm (the thread backend gets this priority for free from the
    /// kernel scheduler, which preempts busy threads when a
    /// `recv_deadline` expires).
    urgent: Mutex<std::collections::VecDeque<u32>>,
}

impl<A: Automaton> Shared<A> {
    /// Puts `idx` on the ready queue unless it is already there.
    fn schedule(&self, idx: usize) {
        if !self.cells[idx].queued.swap(true, Ordering::AcqRel) {
            let _ = self.ready_tx.send(idx as u32);
        }
    }

    /// Like [`schedule`](Self::schedule), but through the urgent lane —
    /// used by the timer thread for expired deadlines. Unconditional:
    /// even a node already *on* the normal ready queue (or mid-run) must
    /// not serve its expired deadline behind the message backlog — under
    /// an echo storm that back-of-the-queue wait is tens of
    /// milliseconds. A duplicate run is a cheap no-op.
    fn schedule_urgent(&self, idx: usize) {
        let _ = self.cells[idx].queued.swap(true, Ordering::AcqRel);
        self.urgent.lock().push_back(idx as u32);
        // Kick a (possibly parked) worker to look at the lane.
        let _ = self.ready_tx.send(KICK);
    }

    /// Network-delivery sink: push and wake. Events for silent nodes
    /// are dropped here — the node crashed before start, so the bytes
    /// would only pile up unread (the thread backend's sink does the
    /// same; the network still counts the delivery). Also carries the
    /// chaos injector's `Freeze`/`Thaw` control events.
    fn deliver(&self, to: NodeId, event: NodeEvent<A::Msg>) {
        if !self.active[to.index()] {
            return;
        }
        let cell = &self.cells[to.index()];
        cell.inbox.lock().push(event);
        self.schedule(to.index());
    }
}

enum WheelCmd {
    /// Replace `node`'s wakeup with `at` (`None` clears it).
    Register { node: u32, at: Option<Instant> },
    Stop,
}

/// Everything a worker thread needs to run nodes. The supervisor moves
/// a dead worker's context into its replacement, so the replacement
/// adopts the same ready queue (and with it the dead worker's backlog).
struct WorkerCtx<A: Automaton> {
    shared: Arc<Shared<A>>,
    ready_rx: Receiver<u32>,
    net: NetLink<A::Msg>,
    wheel_tx: Sender<WheelCmd>,
    counters: Arc<Counters>,
    heartbeats: Arc<Heartbeats>,
}

// Manual impl: `derive(Clone)` would demand `A: Clone`.
impl<A: Automaton> Clone for WorkerCtx<A> {
    fn clone(&self) -> Self {
        WorkerCtx {
            shared: Arc::clone(&self.shared),
            ready_rx: self.ready_rx.clone(),
            net: self.net.clone(),
            wheel_tx: self.wheel_tx.clone(),
            counters: Arc::clone(&self.counters),
            heartbeats: Arc::clone(&self.heartbeats),
        }
    }
}

/// Pushes `tail` back onto the *front* of the cell's inbox, ahead of
/// anything that arrived since it was taken, preserving delivery order.
fn splice_front<A: Automaton>(cell: &Cell<A>, tail: Vec<NodeEvent<A::Msg>>) {
    if tail.is_empty() {
        return;
    }
    let mut inbox = cell.inbox.lock();
    let newer = std::mem::replace(&mut *inbox, tail);
    inbox.extend(newer);
}

/// Runs one handler call with panic capture: rolls the outbox back to
/// its pre-call state, counts the panic against the fault budget,
/// records it as a violation on the node (injected drills excepted) and
/// hands the payload back so the worker can die with it — the
/// supervisor respawns a replacement.
fn guarded<A: Automaton, R>(
    core: &mut NodeCore<A>,
    out: &mut Outbox<A::Msg>,
    counters: &Counters,
    f: impl FnOnce(&mut NodeCore<A>, &mut Outbox<A::Msg>) -> R,
) -> Result<R, Box<dyn Any + Send>> {
    let (s0, b0) = (out.sends.len(), out.broadcasts.len());
    match catch_unwind(AssertUnwindSafe(|| f(core, out))) {
        Ok(r) => Ok(r),
        Err(payload) => {
            out.sends.truncate(s0);
            out.broadcasts.truncate(b0);
            counters.note_panic();
            counters.note_fault_budget();
            let msg = supervise::panic_message(&*payload);
            if !supervise::is_injected(&msg) {
                core.note_violation(&format!("handler panicked: {msg}"));
            }
            Err(payload)
        }
    }
}

/// One scheduling quantum for node `idx` on a worker thread.
///
/// A handler panic does not lose state: the outbox rolls back to the
/// pre-event point, the unprocessed tail of the batch goes back to the
/// front of the inbox (no event lost, none delivered twice), the cell's
/// scheduling bookkeeping completes as usual — and the payload is
/// returned so the worker carrying the panic dies and is respawned.
fn run_node<A: Automaton>(
    ctx: &WorkerCtx<A>,
    idx: usize,
    out: &mut Outbox<A::Msg>,
) -> Result<(), Box<dyn Any + Send>> {
    let shared = &*ctx.shared;
    let cell = &shared.cells[idx];
    let mut panic_payload: Option<Box<dyn Any + Send>> = None;
    let deadline_pending = {
        let mut guard = cell.core.lock();
        let Some(core) = guard.as_mut() else {
            cell.queued.store(false, Ordering::Release);
            return Ok(());
        };
        if core.done {
            let leftover = {
                let mut inbox = cell.inbox.lock();
                let n = inbox.len();
                inbox.clear();
                n
            };
            ctx.counters.note_discarded(leftover as u64);
            ctx.heartbeats.set_deadline(idx, None);
            cell.queued.store(false, Ordering::Release);
            return Ok(());
        }
        if let Err(p) = guarded(core, out, &ctx.counters, |c, o| c.init(o)) {
            panic_payload = Some(p);
        }
        let mut processed = 0;
        'events: while panic_payload.is_none() && processed < BATCH_EVENTS {
            let mut batch = std::mem::take(&mut *cell.inbox.lock());
            if batch.is_empty() {
                break;
            }
            // Hold the quantum to the cap strictly: the tail goes back to
            // the *front* of the inbox (ahead of anything that arrived
            // since the take), or one hot node under an echo storm would
            // monopolize its worker and starve every other node's timers.
            if batch.len() > BATCH_EVENTS - processed {
                let tail = batch.split_off(BATCH_EVENTS - processed);
                splice_front(cell, tail);
            }
            let mut events = batch.into_iter();
            while let Some(event) = events.next() {
                processed += 1;
                match guarded(core, out, &ctx.counters, |c, o| c.on_event(event, o)) {
                    Ok(true) => {}
                    Ok(false) => {
                        // Shutdown: the rest of the batch is moot, but
                        // count it so message accounting stays honest.
                        ctx.counters.note_discarded(events.count() as u64);
                        break 'events;
                    }
                    Err(p) => {
                        // Worker-panic teardown fix: requeue the
                        // unprocessed tail deterministically instead of
                        // dropping it with the dying worker.
                        let tail: Vec<_> = events.collect();
                        splice_front(cell, tail);
                        panic_payload = Some(p);
                        break 'events;
                    }
                }
            }
        }
        if panic_payload.is_none() {
            if let Err(p) = guarded(core, out, &ctx.counters, |c, o| c.fire_due(o)) {
                panic_payload = Some(p);
            }
        }
        out.flush(core.me(), &ctx.net);
        // Register (or clear) this node's wakeup with the timer thread.
        // Re-registration is needed when the earliest deadline changed
        // *or* the wheel no longer holds our entry (it fired — possibly
        // before the emulated clock caught up to the local fire time, or
        // while this very run was in flight).
        let next = if core.done { None } else { core.next_deadline() };
        let needs_register = match next {
            Some(_) => {
                next != core.registered_wakeup || !cell.wheel_armed.load(Ordering::Acquire)
            }
            None => core.registered_wakeup.is_some(),
        };
        if needs_register {
            core.registered_wakeup = next;
            cell.wheel_armed.store(next.is_some(), Ordering::Release);
            let _ = ctx.wheel_tx.send(WheelCmd::Register {
                node: idx as u32,
                at: next,
            });
        }
        ctx.heartbeats
            .set_deadline(idx, if core.done { None } else { next });
        next.is_some()
    };
    cell.queued.store(false, Ordering::Release);
    // Lost-wakeup checks: events that arrived between the inbox drain
    // and the flag clear (or past the batch cap, or requeued by a panic)
    // re-schedule the node; so does a wheel wakeup that fired mid-run
    // and found `queued` set.
    if !cell.inbox.lock().is_empty()
        || (deadline_pending && !cell.wheel_armed.load(Ordering::Acquire))
    {
        shared.schedule(idx);
    }
    match panic_payload {
        Some(p) => Err(p),
        None => Ok(()),
    }
}

/// A worker's main loop: drain the urgent lane, then run ready nodes.
/// A node panic is re-raised here — the worker dies with it and the
/// supervisor respawns a replacement.
fn worker_main<A: Automaton>(ctx: &WorkerCtx<A>) {
    let mut out = Outbox::new();
    while let Ok(idx) = ctx.ready_rx.recv() {
        if idx == STOP {
            return;
        }
        // Expired deadlines first; the ready-queue entry waits its turn
        // behind them.
        loop {
            let next = ctx.shared.urgent.lock().pop_front();
            match next {
                Some(u) => {
                    if let Err(p) = run_node(ctx, u as usize, &mut out) {
                        std::panic::resume_unwind(p);
                    }
                }
                None => break,
            }
        }
        if idx != KICK {
            if let Err(p) = run_node(ctx, idx as usize, &mut out) {
                std::panic::resume_unwind(p);
            }
        }
    }
}

/// Spawns one worker thread. On exit — clean or by panic — the worker
/// reports `(its context, panicked)` to the supervisor through
/// `exit_tx`, which decides between respawn and retirement.
fn spawn_worker<A: Automaton>(
    name: String,
    ctx: WorkerCtx<A>,
    exit_tx: Sender<(WorkerCtx<A>, bool)>,
) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name(name)
        .spawn(move || {
            let panicked = catch_unwind(AssertUnwindSafe(|| worker_main(&ctx))).is_err();
            let _ = exit_tx.send((ctx, panicked));
        })
        .expect("spawn worker thread")
}

fn timer_loop<A: Automaton>(
    shared: &Shared<A>,
    rx: &Receiver<WheelCmd>,
    t0: Instant,
    granularity_ns: u64,
) {
    let nanos_since = |at: Instant| -> u64 {
        #[allow(clippy::cast_possible_truncation)]
        {
            at.saturating_duration_since(t0).as_nanos() as u64
        }
    };
    let mut wheel: TimerWheel<u32> = TimerWheel::new(granularity_ns, WHEEL_SLOTS);
    let mut keys: Vec<Option<WheelKey>> = vec![None; shared.cells.len()];
    let apply = |wheel: &mut TimerWheel<u32>,
                     keys: &mut Vec<Option<WheelKey>>,
                     cmd: WheelCmd|
     -> bool {
        match cmd {
            WheelCmd::Register { node, at } => {
                if let Some(key) = keys[node as usize].take() {
                    wheel.cancel(key);
                }
                if let Some(at) = at {
                    keys[node as usize] = Some(wheel.insert(nanos_since(at), node));
                }
                true
            }
            WheelCmd::Stop => false,
        }
    };
    loop {
        // Apply every already-queued command without blocking…
        loop {
            match rx.try_recv() {
                Ok(cmd) => {
                    if !apply(&mut wheel, &mut keys, cmd) {
                        return;
                    }
                }
                Err(channel::TryRecvError::Empty) => break,
                Err(channel::TryRecvError::Disconnected) => return,
            }
        }
        // …then fire everything due *now*. This must come before the
        // blocking receive and must not depend on a timeout: under an
        // echo storm the re-registration traffic is continuous, and a
        // `recv_deadline` that drains queued commands before reporting
        // `Timeout` would otherwise starve expiry for as long as the
        // storm lasts (≈ one message flight — a protocol-visible
        // deadline slip, not jitter).
        for (_, node) in wheel.advance(nanos_since(Instant::now())) {
            keys[node as usize] = None;
            // Disarm *before* scheduling: if the node is mid-run and the
            // schedule is swallowed by its `queued` flag, the worker's
            // post-run recheck observes the disarm and re-schedules.
            shared.cells[node as usize]
                .wheel_armed
                .store(false, Ordering::Release);
            shared.schedule_urgent(node as usize);
        }
        let next = wheel
            .next_deadline()
            .map(|ns| t0 + Duration::from_nanos(ns));
        let cmd = match next {
            Some(at) => rx.recv_deadline(at),
            None => rx
                .recv()
                .map_err(|_| channel::RecvTimeoutError::Disconnected),
        };
        match cmd {
            Ok(cmd) => {
                if !apply(&mut wheel, &mut keys, cmd) {
                    return;
                }
            }
            Err(channel::RecvTimeoutError::Disconnected) => return,
            Err(channel::RecvTimeoutError::Timeout) => { /* loop fires due */ }
        }
    }
}

/// Runs the configured system on the reactor backend. Mirrors the thread
/// backend observable-for-observable: same RNG draw order for rates and
/// offsets, same network semantics, same report.
pub(crate) fn run<A, F>(
    cfg: &RuntimeConfig,
    silent: &[usize],
    ring: &KeyRing,
    rng: &mut SmallRng,
    mut make_node: F,
) -> BackendRun
where
    A: Automaton,
    F: FnMut(NodeId) -> A,
{
    let workers = cfg
        .workers
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        })
        .max(1);
    let t0 = Instant::now();
    let counters = Arc::new(Counters::new(cfg.n));
    let heartbeats = Arc::new(Heartbeats::new(cfg.n, t0));
    let stop = Arc::new(AtomicBool::new(false));
    // The epoch is a hair in the future so every clock starts at its
    // configured offset, mirroring the thread backend's barrier anchor.
    let epoch = t0 + Duration::from_millis(2);
    let verifier = ring.verifier();

    let (ready_tx, ready_rx) = channel::unbounded::<u32>();
    let mut cells = Vec::with_capacity(cfg.n);
    let mut active = Vec::with_capacity(cfg.n);
    for i in 0..cfg.n {
        let core = if silent.binary_search(&i).is_ok() {
            None
        } else {
            let me = NodeId::new(i);
            let rate = 1.0 + rng.gen::<f64>() * (cfg.theta - 1.0);
            let offset = cfg.max_offset * rng.gen::<f64>();
            let clock = EmulatedClock::new(epoch, offset, rate);
            let mut core = NodeCore::new(
                make_node(me),
                me,
                cfg.n,
                clock,
                ring.signer(me),
                Arc::clone(&verifier),
            );
            if let Some(obs) = &cfg.observer {
                core.set_observer(Arc::clone(obs), epoch);
            }
            Some(core)
        };
        active.push(core.is_some());
        cells.push(Cell {
            inbox: Mutex::new(Vec::new()),
            queued: AtomicBool::new(false),
            wheel_armed: AtomicBool::new(false),
            core: Mutex::new(core),
        });
    }
    let shared = Arc::new(Shared {
        cells,
        active,
        ready_tx: ready_tx.clone(),
        urgent: Mutex::new(std::collections::VecDeque::new()),
    });

    let net_sink = {
        let shared = Arc::clone(&shared);
        move |to: NodeId, event: NodeEvent<A::Msg>| shared.deliver(to, event)
    };
    let net_chaos = cfg.chaos.as_ref().map(|timeline| {
        let cell = Arc::new(std::sync::OnceLock::new());
        cell.set(epoch).expect("fresh cell");
        NetChaos {
            timeline: Arc::clone(timeline),
            epoch: cell,
        }
    });
    let network = Network::spawn(net_sink, cfg.n, cfg.d, cfg.u, cfg.seed, net_chaos);

    let (wheel_tx, wheel_rx) = channel::unbounded::<WheelCmd>();
    let granularity = wheel_granularity_ns(cfg.u, cfg.d);
    let timer_handle = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("crusader-timer".into())
            .spawn(move || timer_loop(&shared, &wheel_rx, t0, granularity))
            .expect("spawn timer thread")
    };

    // The watchdog nudges stalled nodes back through the urgent lane.
    let watchdog = {
        let shared = Arc::clone(&shared);
        supervise::spawn_watchdog(
            Arc::clone(&heartbeats),
            Arc::clone(&counters),
            supervise::stall_threshold(cfg.d),
            Arc::clone(&stop),
            move |idx| shared.schedule_urgent(idx),
        )
    };

    let net = NetLink::new(network.commands.clone(), Arc::clone(&counters));
    let (exit_tx, exit_rx) = channel::unbounded::<(WorkerCtx<A>, bool)>();
    let worker_handles: Vec<_> = (0..workers)
        .map(|w| {
            let ctx = WorkerCtx {
                shared: Arc::clone(&shared),
                ready_rx: ready_rx.clone(),
                net: net.clone(),
                wheel_tx: wheel_tx.clone(),
                counters: Arc::clone(&counters),
                heartbeats: Arc::clone(&heartbeats),
            };
            spawn_worker(format!("crusader-worker-{w}"), ctx, exit_tx.clone())
        })
        .collect();

    // The supervisor owns the exit channel: a worker that died of a
    // panic (before shutdown began) is replaced by a fresh thread
    // adopting its context — same ready queue, so the dead worker's
    // backlog is picked up by the pool.
    let supervisor = {
        let counters = Arc::clone(&counters);
        let stop = Arc::clone(&stop);
        let exit_tx = exit_tx.clone();
        std::thread::Builder::new()
            .name("crusader-supervisor".into())
            .spawn(move || {
                let mut live = workers;
                let mut generation = 0u64;
                let mut respawned = Vec::new();
                while live > 0 {
                    let Ok((ctx, panicked)) = exit_rx.recv() else {
                        break;
                    };
                    if panicked && !stop.load(Ordering::Acquire) {
                        generation += 1;
                        counters.note_respawn();
                        respawned.push(spawn_worker(
                            format!("crusader-worker-respawn-{generation}"),
                            ctx,
                            exit_tx.clone(),
                        ));
                    } else {
                        live -= 1;
                    }
                }
                for handle in respawned {
                    let _ = handle.join();
                }
            })
            .expect("spawn supervisor thread")
    };
    drop(exit_tx);

    // Kick every live node so its `on_init` runs (lazily, on a worker).
    for i in 0..cfg.n {
        if silent.binary_search(&i).is_err() {
            shared.schedule(i);
        }
    }

    std::thread::sleep(cfg.run_for);

    // Orderly shutdown: Shutdown events first, then one sentinel per
    // worker — FIFO ordering drains all pre-shutdown work first.
    for i in 0..cfg.n {
        if silent.binary_search(&i).is_err() {
            shared.cells[i].inbox.lock().push(NodeEvent::Shutdown);
            shared.schedule(i);
        }
    }
    for _ in 0..workers {
        let _ = ready_tx.send(STOP);
    }
    // Panics from here on retire the worker instead of respawning it —
    // the run is over.
    stop.store(true, Ordering::Release);
    let _ = supervisor.join();
    for handle in worker_handles {
        let _ = handle.join();
    }
    let _ = network.commands.send(NetCommand::Shutdown);
    let (messages_delivered, chaos_dropped) = network.handle.join().unwrap_or((0, 0));
    let _ = wheel_tx.send(WheelCmd::Stop);
    let _ = timer_handle.join();
    // The watchdog's nudge closure holds the `Shared` handle; join it
    // before harvesting.
    let _ = watchdog.join();
    drop(net);

    // Everything is joined: harvest without contention. Events still
    // queued (deliveries that raced shutdown) are counted as discarded,
    // never silently lost.
    let shared = Arc::into_inner(shared).expect("all thread handles joined");
    let mut pulse_log = vec![Vec::new(); cfg.n];
    let mut violations = Vec::new();
    for (i, cell) in shared.cells.into_iter().enumerate() {
        counters.note_discarded(cell.inbox.into_inner().len() as u64);
        if let Some(core) = cell.core.into_inner() {
            let (pulses, viols) = core.into_results();
            pulse_log[i] = pulses;
            violations.extend(viols);
        }
    }
    BackendRun {
        epoch,
        pulse_log,
        violations,
        messages_delivered,
        chaos_dropped,
        supervision: counters.snapshot(),
    }
}
