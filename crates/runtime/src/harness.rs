//! Run configuration, backend dispatch, and report assembly.

use std::collections::BTreeSet;
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier, OnceLock};
use std::time::{Duration, Instant};

use crossbeam::channel;
use crusader_crypto::{KeyRing, NodeId};
use crusader_sim::{Automaton, ChaosTimeline, RunObserver, Trace};
use crusader_time::{Dur, Time};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::clock::EmulatedClock;
use crate::net::{NetChaos, NetCommand, NetLink, Network, NodeEvent};
use crate::node::{node_loop, NodeCore};
use crate::reactor;
use crate::supervise::{self, Counters, Heartbeats, SupervisionStats};

/// Which executor drives the node automatons.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Backend {
    /// One OS thread per node (the original deployment path). Simple and
    /// latency-faithful, but the OS scheduler caps it at a few hundred
    /// nodes of useful scale.
    #[default]
    Threads,
    /// The event-driven worker-pool reactor: N node tasks multiplexed
    /// onto [`RuntimeConfig::workers`] long-lived threads with per-node
    /// inboxes and a hashed timer wheel — thousands of nodes on a
    /// handful of threads. See `crates/runtime/src/reactor.rs`.
    Reactor,
}

impl Backend {
    /// The stable CLI/JSON name of the backend.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Backend::Threads => "threads",
            Backend::Reactor => "reactor",
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Backend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "threads" => Ok(Backend::Threads),
            "reactor" => Ok(Backend::Reactor),
            other => Err(format!(
                "unknown backend {other:?} (want 'threads' or 'reactor')"
            )),
        }
    }
}

/// Configuration of a wall-clock run.
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Number of nodes.
    pub n: usize,
    /// Nodes left unstarted (crash-from-start faults). For Byzantine
    /// experiments use the deterministic simulator, which can audit the
    /// adversary; the runtime is the deployment path.
    ///
    /// Duplicate and out-of-range indices are ignored (the set is
    /// deduplicated before use — a repeated index must not desynchronize
    /// the startup barrier or the active-node count).
    pub silent: Vec<usize>,
    /// Maximum injected link delay `d`.
    pub d: Dur,
    /// Injected delay uncertainty `u` (delays uniform in `[d − u, d]`).
    /// Host scheduling jitter adds to this in practice — size `u`
    /// accordingly (milliseconds, not microseconds, on a busy machine).
    pub u: Dur,
    /// Emulated clock-rate bound: rates drawn uniformly from `[1, θ]`.
    pub theta: f64,
    /// Emulated initial clock offsets drawn from `[0, max_offset]`.
    pub max_offset: Dur,
    /// How long (host time) to run before shutting down.
    pub run_for: Duration,
    /// RNG seed for delays, rates and offsets.
    pub seed: u64,
    /// Which executor runs the nodes ([`Backend::Threads`] by default).
    pub backend: Backend,
    /// Worker threads for the [`Backend::Reactor`] executor; `None`
    /// means `available_parallelism()`. Ignored by the thread backend.
    pub workers: Option<usize>,
    /// Chaos fault timeline replayed against the run: link cuts, delay
    /// storms and flood windows are enforced by the network thread;
    /// crash windows freeze/thaw the node cores at the scheduled
    /// scenario times (measured from the run epoch). `None` (the
    /// default) injects nothing.
    pub chaos: Option<Arc<ChaosTimeline>>,
    /// Continuous run observer: sees every pulse and violation as it
    /// happens, on whichever backend thread produced it (implementations
    /// are `Sync` and use interior mutability). `None` by default.
    pub observer: Option<Arc<dyn RunObserver>>,
}

impl RuntimeConfig {
    /// A config with everything defaulted except the system size:
    /// fault-free, 5 ms/2 ms WAN-ish link, θ = 1.01, 500 ms run, thread
    /// backend. Meant to be customized by struct update syntax.
    #[must_use]
    pub fn new(n: usize) -> Self {
        RuntimeConfig {
            n,
            silent: Vec::new(),
            d: Dur::from_millis(5.0),
            u: Dur::from_millis(2.0),
            theta: 1.01,
            max_offset: Dur::from_millis(1.0),
            run_for: Duration::from_millis(500),
            seed: 0,
            backend: Backend::Threads,
            workers: None,
            chaos: None,
            observer: None,
        }
    }
}

/// The result of a wall-clock run, convertible to the simulator's
/// [`Trace`] for reuse of the skew/period metrics.
#[derive(Clone, Debug)]
pub struct RuntimeReport {
    /// Pulse instants per node, as seconds since the harness epoch.
    pub trace: Trace,
    /// Messages the network thread delivered (broadcasts count once per
    /// destination, including destinations that crashed at start).
    pub messages_delivered: u64,
    /// Supervision outcome: contained panics, worker respawns, detected
    /// stalls, network retry/drop counts and the degradation flag.
    pub supervision: SupervisionStats,
}

/// What a backend returns to the harness: everything still in host-time
/// terms, converted to a [`Trace`] once, outside any lock.
pub(crate) struct BackendRun {
    pub epoch: Instant,
    pub pulse_log: Vec<Vec<(u64, Instant)>>,
    pub violations: Vec<String>,
    pub messages_delivered: u64,
    /// Sends the network thread discarded on chaos link cuts.
    pub chaos_dropped: u64,
    /// Fault accounting from the supervision layer.
    pub supervision: SupervisionStats,
}

/// Runs `make_node`-built automatons under real threads, real (injected)
/// delays and real ed25519 signatures, on the configured [`Backend`].
///
/// The same [`Automaton`] code that runs in the simulator runs here —
/// `CpsNode`, `LwNode`, `EchoSyncNode`, or yours — and the same protocol
/// driver (`NodeCore`, `src/node.rs`) runs under both backends, so the
/// two differ only in scheduling.
///
/// # Panics
///
/// Panics if thread spawning fails or if `n == 0`. An automaton handler
/// that panics on a backend thread is *contained*: the panic is counted
/// on [`RuntimeReport::supervision`], recorded as a violation against
/// the node, and the run keeps going (on the reactor, the worker that
/// carried it is respawned).
pub fn run<A, F>(cfg: &RuntimeConfig, make_node: F) -> RuntimeReport
where
    A: Automaton,
    F: FnMut(NodeId) -> A,
{
    assert!(cfg.n > 0, "need at least one node");
    if let Some(chaos) = &cfg.chaos {
        assert_eq!(
            chaos.n(),
            cfg.n,
            "chaos timeline sized for a different system"
        );
    }
    // Dedupe and bound the silent set once: a duplicated index in
    // `cfg.silent` must count one node, not two (a repeat used to
    // desynchronize the startup barrier and hang the run).
    let silent: Vec<usize> = cfg
        .silent
        .iter()
        .copied()
        .filter(|&i| i < cfg.n)
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    let ring = KeyRing::ed25519(cfg.n, cfg.seed);
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x0e0e_1111);
    let run = match cfg.backend {
        Backend::Threads => run_threads(cfg, &silent, &ring, &mut rng, make_node),
        Backend::Reactor => reactor::run(cfg, &silent, &ring, &mut rng, make_node),
    };

    // Convert to the simulator's trace for metric reuse. The backends
    // surrendered ownership of their logs, so this clones nothing and
    // holds no lock.
    let BackendRun {
        epoch,
        pulse_log,
        mut violations,
        messages_delivered,
        chaos_dropped,
        supervision,
    } = run;
    let mut trace = Trace::default();
    trace.pulses = pulse_log
        .into_iter()
        .map(|mut pulses| {
            pulses.sort_by_key(|(idx, _)| *idx);
            pulses
                .into_iter()
                .map(|(_, at)| {
                    Time::from_secs(at.saturating_duration_since(epoch).as_secs_f64())
                })
                .collect()
        })
        .collect();
    violations.sort();
    trace.violations = violations;
    trace.messages_delivered = messages_delivered;
    trace.chaos_drops = chaos_dropped;
    RuntimeReport {
        trace,
        messages_delivered,
        supervision,
    }
}

/// The original thread-per-node backend.
fn run_threads<A, F>(
    cfg: &RuntimeConfig,
    silent: &[usize],
    ring: &KeyRing,
    rng: &mut SmallRng,
    mut make_node: F,
) -> BackendRun
where
    A: Automaton,
    F: FnMut(NodeId) -> A,
{
    // The epoch is anchored only after every node thread is running and
    // parked at the barrier; otherwise a slow-spawning thread would start
    // rounds late and look like a node with an out-of-model clock.
    let active = cfg.n - silent.len();
    let barrier = Arc::new(Barrier::new(active + 1));
    let epoch_cell: Arc<OnceLock<Instant>> = Arc::new(OnceLock::new());
    let counters = Arc::new(Counters::new(cfg.n));
    let heartbeats = Arc::new(Heartbeats::new(cfg.n, Instant::now()));
    let stop = Arc::new(AtomicBool::new(false));
    // Watchdog with a no-op nudge: a node here is an OS thread the
    // kernel wakes itself, so a stall is only counted (and degrades the
    // run), not rescheduled.
    let watchdog = supervise::spawn_watchdog(
        Arc::clone(&heartbeats),
        Arc::clone(&counters),
        supervise::stall_threshold(cfg.d),
        Arc::clone(&stop),
        |_| {},
    );

    let mut inbox_txs: Vec<Option<channel::Sender<NodeEvent<A::Msg>>>> = Vec::with_capacity(cfg.n);
    let mut inbox_rxs = Vec::with_capacity(cfg.n);
    // Probe clones of the inbox receivers: after everything is joined,
    // whatever is left unread in an inbox is counted as discarded so
    // shutdown races never silently lose accounting.
    let mut probe_rxs: Vec<Option<channel::Receiver<NodeEvent<A::Msg>>>> =
        Vec::with_capacity(cfg.n);
    for i in 0..cfg.n {
        if silent.binary_search(&i).is_ok() {
            inbox_txs.push(None);
            inbox_rxs.push(None);
            probe_rxs.push(None);
        } else {
            let (tx, rx) = channel::unbounded::<NodeEvent<A::Msg>>();
            inbox_txs.push(Some(tx));
            probe_rxs.push(Some(rx.clone()));
            inbox_rxs.push(Some(rx));
        }
    }
    let net_sink = {
        let txs = inbox_txs.clone();
        move |to: NodeId, event: NodeEvent<A::Msg>| {
            // Silent nodes crashed at start: their messages are dropped
            // rather than buffered unread. A closed inbox means that node
            // already shut down; also fine.
            if let Some(tx) = &txs[to.index()] {
                let _ = tx.send(event);
            }
        }
    };
    let net_chaos = cfg.chaos.as_ref().map(|timeline| NetChaos {
        timeline: Arc::clone(timeline),
        epoch: Arc::clone(&epoch_cell),
    });
    let network = Network::spawn(net_sink, cfg.n, cfg.d, cfg.u, cfg.seed, net_chaos);

    let verifier = ring.verifier();
    let mut handles = Vec::new();
    for (i, inbox_slot) in inbox_rxs.iter_mut().enumerate() {
        let me = NodeId::new(i);
        let Some(inbox) = inbox_slot.take() else {
            continue; // silent
        };
        let rate = 1.0 + rng.gen::<f64>() * (cfg.theta - 1.0);
        let offset = cfg.max_offset * rng.gen::<f64>();
        let automaton = make_node(me);
        let net = NetLink::new(network.commands.clone(), Arc::clone(&counters));
        let signer = ring.signer(me);
        let verifier = Arc::clone(&verifier);
        let n = cfg.n;
        let barrier = Arc::clone(&barrier);
        let epoch_cell = Arc::clone(&epoch_cell);
        let observer = cfg.observer.clone();
        let counters = Arc::clone(&counters);
        let heartbeats = Arc::clone(&heartbeats);
        handles.push((
            i,
            std::thread::Builder::new()
                .name(format!("crusader-{me}"))
                .spawn(move || {
                    barrier.wait();
                    let epoch = *epoch_cell.wait();
                    let clock = EmulatedClock::new(epoch, offset, rate);
                    let mut core = NodeCore::new(automaton, me, n, clock, signer, verifier);
                    if let Some(obs) = observer {
                        core.set_observer(obs, epoch);
                    }
                    node_loop(core, &inbox, &net, &counters, &heartbeats)
                })
                .expect("spawn node thread"),
        ));
    }

    barrier.wait();
    let epoch = Instant::now() + Duration::from_millis(5);
    epoch_cell.set(epoch).expect("epoch set once");
    std::thread::sleep(cfg.run_for);
    for tx in inbox_txs.iter().flatten() {
        let _ = tx.send(NodeEvent::Shutdown);
    }
    let mut pulse_log = vec![Vec::new(); cfg.n];
    let mut violations = Vec::new();
    for (i, handle) in handles {
        match handle.join() {
            Ok(core) => {
                let (pulses, viols) = core.into_results();
                pulse_log[i] = pulses;
                violations.extend(viols);
            }
            Err(payload) => {
                // Handler panics are contained inside `node_loop`, so a
                // dead node thread is an infrastructure fault. Log it,
                // count it, keep the run's results.
                counters.note_panic();
                counters.note_fault_budget();
                let msg = supervise::panic_message(&*payload);
                violations.push(format!("{}: node thread died: {msg}", NodeId::new(i)));
            }
        }
    }
    let _ = network.commands.send(NetCommand::Shutdown);
    let (messages_delivered, chaos_dropped) = network.handle.join().unwrap_or((0, 0));
    stop.store(true, Ordering::Release);
    let _ = watchdog.join();
    // Count events no node ever read (deliveries that raced shutdown).
    for probe in probe_rxs.iter().flatten() {
        let mut leftover = 0u64;
        while probe.try_recv().is_ok() {
            leftover += 1;
        }
        counters.note_discarded(leftover);
    }
    BackendRun {
        epoch,
        pulse_log,
        violations,
        messages_delivered,
        chaos_dropped,
        supervision: counters.snapshot(),
    }
}
