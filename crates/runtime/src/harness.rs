use std::sync::{Arc, Barrier, OnceLock};
use std::time::{Duration, Instant};

use crossbeam::channel;
use crusader_crypto::{KeyRing, NodeId};
use crusader_sim::{Automaton, Trace};
use crusader_time::{Dur, Time};
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::clock::EmulatedClock;
use crate::net::{NetCommand, Network, NodeEvent};
use crate::node::node_loop;

/// Configuration of a wall-clock run.
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Number of nodes.
    pub n: usize,
    /// Nodes left unstarted (crash-from-start faults). For Byzantine
    /// experiments use the deterministic simulator, which can audit the
    /// adversary; the runtime is the deployment path.
    pub silent: Vec<usize>,
    /// Maximum injected link delay `d`.
    pub d: Dur,
    /// Injected delay uncertainty `u` (delays uniform in `[d − u, d]`).
    /// Host scheduling jitter adds to this in practice — size `u`
    /// accordingly (milliseconds, not microseconds, on a busy machine).
    pub u: Dur,
    /// Emulated clock-rate bound: rates drawn uniformly from `[1, θ]`.
    pub theta: f64,
    /// Emulated initial clock offsets drawn from `[0, max_offset]`.
    pub max_offset: Dur,
    /// How long (host time) to run before shutting down.
    pub run_for: Duration,
    /// RNG seed for delays, rates and offsets.
    pub seed: u64,
}

/// The result of a wall-clock run, convertible to the simulator's
/// [`Trace`] for reuse of the skew/period metrics.
#[derive(Clone, Debug)]
pub struct RuntimeReport {
    /// Pulse instants per node, as seconds since the harness epoch.
    pub trace: Trace,
    /// Messages the network thread delivered.
    pub messages_delivered: u64,
}

/// Runs `make_node`-built automatons under real threads, real (injected)
/// delays and real ed25519 signatures.
///
/// The same [`Automaton`] code that runs in the simulator runs here —
/// `CpsNode`, `LwNode`, `EchoSyncNode`, or yours.
///
/// # Panics
///
/// Panics if thread spawning fails or `n == 0`.
pub fn run<A, F>(cfg: &RuntimeConfig, mut make_node: F) -> RuntimeReport
where
    A: Automaton + 'static,
    F: FnMut(NodeId) -> A,
{
    assert!(cfg.n > 0, "need at least one node");
    let ring = KeyRing::ed25519(cfg.n, cfg.seed);
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x0e0e_1111);
    // The epoch is anchored only after every node thread is running and
    // parked at the barrier; otherwise a slow-spawning thread would start
    // rounds late and look like a node with an out-of-model clock.
    let active = cfg.n - cfg.silent.iter().filter(|i| **i < cfg.n).count();
    let barrier = Arc::new(Barrier::new(active + 1));
    let epoch_cell: Arc<OnceLock<Instant>> = Arc::new(OnceLock::new());

    let mut inbox_txs = Vec::with_capacity(cfg.n);
    let mut inbox_rxs = Vec::with_capacity(cfg.n);
    for _ in 0..cfg.n {
        let (tx, rx) = channel::unbounded::<NodeEvent<A::Msg>>();
        inbox_txs.push(tx);
        inbox_rxs.push(Some(rx));
    }
    let network = Network::spawn(inbox_txs.clone(), cfg.d, cfg.u, cfg.seed);

    let pulse_log = Arc::new(Mutex::new(vec![Vec::new(); cfg.n]));
    let violations = Arc::new(Mutex::new(Vec::new()));
    let mut handles = Vec::new();
    for i in 0..cfg.n {
        if cfg.silent.contains(&i) {
            continue;
        }
        let me = NodeId::new(i);
        let rate = 1.0 + rng.gen::<f64>() * (cfg.theta - 1.0);
        let offset = cfg.max_offset * rng.gen::<f64>();
        let automaton = make_node(me);
        let inbox = inbox_rxs[i].take().expect("inbox not yet taken");
        let net = network.commands.clone();
        let signer = ring.signer(me);
        let verifier = ring.verifier();
        let log = Arc::clone(&pulse_log);
        let viol = Arc::clone(&violations);
        let n = cfg.n;
        let barrier = Arc::clone(&barrier);
        let epoch_cell = Arc::clone(&epoch_cell);
        handles.push(
            std::thread::Builder::new()
                .name(format!("crusader-{me}"))
                .spawn(move || {
                    barrier.wait();
                    let epoch = *epoch_cell.wait();
                    let clock = EmulatedClock::new(epoch, offset, rate);
                    node_loop(
                        automaton, me, n, clock, inbox, net, signer, verifier, log, viol,
                    );
                })
                .expect("spawn node thread"),
        );
    }

    barrier.wait();
    let epoch = Instant::now() + Duration::from_millis(5);
    epoch_cell.set(epoch).expect("epoch set once");
    std::thread::sleep(cfg.run_for);
    for tx in &inbox_txs {
        let _ = tx.send(NodeEvent::Shutdown);
    }
    for handle in handles {
        let _ = handle.join();
    }
    let _ = network.commands.send(NetCommand::Shutdown);
    let messages_delivered = network.handle.join().unwrap_or(0);

    // Convert to the simulator's trace for metric reuse.
    let log = pulse_log.lock();
    let mut trace = Trace::default();
    trace.pulses = log
        .iter()
        .map(|pulses| {
            let mut sorted: Vec<(u64, Instant)> = pulses.clone();
            sorted.sort_by_key(|(idx, _)| *idx);
            sorted
                .iter()
                .map(|(_, at)| {
                    Time::from_secs(at.saturating_duration_since(epoch).as_secs_f64())
                })
                .collect()
        })
        .collect();
    trace.violations = violations.lock().clone();
    trace.messages_delivered = messages_delivered;
    RuntimeReport {
        trace,
        messages_delivered,
    }
}
