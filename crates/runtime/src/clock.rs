use std::time::Instant;

use crusader_time::{Dur, LocalTime};

/// An emulated drifting hardware clock over the host's monotonic clock:
/// `H(t) = offset + rate · (t − start)`.
///
/// The wall-clock runtime uses these to reproduce the model's clock-drift
/// assumption on real hardware whose TSC is (at our timescales) perfectly
/// disciplined. `rate ∈ [1, θ]` and `offset ∈ [0, S]` as in the model.
#[derive(Clone, Debug)]
pub struct EmulatedClock {
    start: Instant,
    offset: Dur,
    rate: f64,
}

impl EmulatedClock {
    /// Creates a clock anchored at `start` (usually the harness epoch).
    ///
    /// # Panics
    ///
    /// Panics unless `rate > 0`.
    #[must_use]
    pub fn new(start: Instant, offset: Dur, rate: f64) -> Self {
        assert!(rate > 0.0, "clock rate must be positive");
        EmulatedClock {
            start,
            offset,
            rate,
        }
    }

    /// Reads the clock at host instant `now`.
    #[must_use]
    pub fn read(&self, now: Instant) -> LocalTime {
        let elapsed = now.saturating_duration_since(self.start).as_secs_f64();
        LocalTime::ZERO + self.offset + Dur::from_secs(elapsed * self.rate)
    }

    /// The host instant at which the clock reads `at` (clamped to
    /// `start` for pre-epoch readings).
    #[must_use]
    pub fn when(&self, at: LocalTime) -> Instant {
        let local_span = (at - (LocalTime::ZERO + self.offset)).as_secs();
        let real_span = (local_span / self.rate).max(0.0);
        self.start + std::time::Duration::from_secs_f64(real_span)
    }

    /// The emulated rate.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn read_applies_offset_and_rate() {
        let start = Instant::now();
        let clock = EmulatedClock::new(start, Dur::from_millis(2.0), 1.5);
        let later = start + Duration::from_millis(100);
        let local = clock.read(later);
        assert!((local.as_secs() - (0.002 + 0.15)).abs() < 1e-9);
        assert_eq!(clock.rate(), 1.5);
    }

    #[test]
    fn when_inverts_read() {
        let start = Instant::now();
        let clock = EmulatedClock::new(start, Dur::from_millis(1.0), 1.01);
        let t = start + Duration::from_millis(50);
        let back = clock.when(clock.read(t));
        let diff = if back > t { back - t } else { t - back };
        assert!(diff < Duration::from_micros(1));
    }

    #[test]
    fn pre_epoch_reads_clamp() {
        let start = Instant::now();
        let clock = EmulatedClock::new(start, Dur::ZERO, 1.0);
        // A target before the offset maps back to the epoch.
        assert!(clock.when(LocalTime::ZERO) <= start + Duration::from_micros(1));
    }
}
