//! Supervision primitives for the wall-clock runtime: fault counters
//! with an explicit degradation budget, per-node heartbeat slots for
//! silent-stall detection, and the watchdog thread that scans them.
//!
//! The runtime's fault posture is *log and keep going*. A panicking
//! handler is contained (and, on the reactor, its worker respawned with
//! the dead worker's node queue adopted by the pool); a network sink
//! that stays full triggers bounded retry with exponential backoff
//! before the send is dropped and counted; a node whose next timer
//! deadline passes by more than the stall threshold without the node
//! running is nudged back onto the scheduler and counted as a stall.
//! When the observed fault count (panics + stalls + failed sends)
//! exceeds the budget — `⌊(n − 1)/2⌋`, the crash-fault ceiling of the
//! protocol family this runtime deploys — the run flips into an
//! explicitly *degraded* mode: the transition is logged once, the
//! healthy majority keeps being served, and the flag is reported on the
//! final [`SupervisionStats`] instead of aborting the deployment
//! mid-run.

use std::any::Any;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crusader_time::Dur;

/// Supervision outcome of one runtime run, reported on
/// [`RuntimeReport`](crate::RuntimeReport).
///
/// Counts are totals over the whole run, across both backends' fault
/// paths; none of them abort a run — the runtime degrades and logs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SupervisionStats {
    /// Automaton-handler panics contained by the backend (includes
    /// injected panic drills from a chaos timeline).
    pub worker_panics: u64,
    /// Reactor workers respawned after a panic killed their thread.
    /// Zero on the thread backend, which contains panics in-loop.
    pub worker_respawns: u64,
    /// Silent node stalls detected by the watchdog (a registered timer
    /// deadline overdue by more than the stall threshold).
    pub stalls_detected: u64,
    /// Sends that needed at least one retry because the network sink
    /// was full.
    pub net_retries: u64,
    /// Sends dropped after every retry attempt timed out.
    pub net_sends_failed: u64,
    /// Queued node events discarded at teardown or past a shutdown —
    /// counted, never silently lost, so panic-path runs cannot distort
    /// message accounting unnoticed.
    pub events_discarded: u64,
    /// The fault budget the run was allowed before degrading:
    /// `⌊(n − 1)/2⌋`.
    pub fault_budget: u64,
    /// Whether observed faults (panics + stalls + failed sends)
    /// exceeded the budget at any point.
    pub degraded: bool,
}

/// Shared fault accounting. Everything is relaxed atomics: counters are
/// statistics, not synchronization.
pub(crate) struct Counters {
    worker_panics: AtomicU64,
    worker_respawns: AtomicU64,
    stalls_detected: AtomicU64,
    net_retries: AtomicU64,
    net_sends_failed: AtomicU64,
    events_discarded: AtomicU64,
    fault_budget: u64,
    degraded: AtomicBool,
}

impl Counters {
    pub fn new(n: usize) -> Self {
        Counters {
            worker_panics: AtomicU64::new(0),
            worker_respawns: AtomicU64::new(0),
            stalls_detected: AtomicU64::new(0),
            net_retries: AtomicU64::new(0),
            net_sends_failed: AtomicU64::new(0),
            events_discarded: AtomicU64::new(0),
            fault_budget: (n.saturating_sub(1) / 2) as u64,
            degraded: AtomicBool::new(false),
        }
    }

    pub fn note_panic(&self) {
        self.worker_panics.fetch_add(1, Ordering::Relaxed);
    }

    pub fn note_respawn(&self) {
        self.worker_respawns.fetch_add(1, Ordering::Relaxed);
    }

    pub fn note_stall(&self) {
        self.stalls_detected.fetch_add(1, Ordering::Relaxed);
    }

    pub fn note_net_retry(&self) {
        self.net_retries.fetch_add(1, Ordering::Relaxed);
    }

    pub fn note_net_send_failed(&self) {
        self.net_sends_failed.fetch_add(1, Ordering::Relaxed);
    }

    pub fn note_discarded(&self, count: u64) {
        if count > 0 {
            self.events_discarded.fetch_add(count, Ordering::Relaxed);
        }
    }

    fn observed_faults(&self) -> u64 {
        self.worker_panics.load(Ordering::Relaxed)
            + self.stalls_detected.load(Ordering::Relaxed)
            + self.net_sends_failed.load(Ordering::Relaxed)
    }

    /// Re-evaluates the fault budget after a fault was counted; on the
    /// first crossing, logs the degradation transition (once) and
    /// latches the flag. Graceful degradation: the run continues.
    pub fn note_fault_budget(&self) {
        let observed = self.observed_faults();
        if observed > self.fault_budget && !self.degraded.swap(true, Ordering::AcqRel) {
            eprintln!(
                "crusader-runtime: {observed} observed faults exceed the budget of {}; \
                 continuing in degraded mode",
                self.fault_budget
            );
        }
    }

    pub fn snapshot(&self) -> SupervisionStats {
        SupervisionStats {
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            worker_respawns: self.worker_respawns.load(Ordering::Relaxed),
            stalls_detected: self.stalls_detected.load(Ordering::Relaxed),
            net_retries: self.net_retries.load(Ordering::Relaxed),
            net_sends_failed: self.net_sends_failed.load(Ordering::Relaxed),
            events_discarded: self.events_discarded.load(Ordering::Relaxed),
            fault_budget: self.fault_budget,
            degraded: self.degraded.load(Ordering::Acquire),
        }
    }
}

/// Heartbeat slot value meaning "no stall check applies": the node is
/// idle (no pending timer), frozen, done, or silent.
pub(crate) const EXEMPT: u64 = u64::MAX;

/// Per-node next-expected-deadline slots, in nanoseconds since `t0`.
///
/// A backend writes a node's slot every time it runs the node: the
/// earliest pending timer deadline, or [`EXEMPT`] when the node has no
/// wakeup of its own. The watchdog flags a node whose recorded deadline
/// passed by more than the stall threshold — the signature of a wakeup
/// lost to a dead worker or a wedged scheduler, which a healthy run
/// never exhibits (late wakeups stay within scheduling jitter).
pub(crate) struct Heartbeats {
    t0: Instant,
    beats: Vec<AtomicU64>,
}

impl Heartbeats {
    pub fn new(n: usize, t0: Instant) -> Self {
        Heartbeats {
            t0,
            beats: (0..n).map(|_| AtomicU64::new(EXEMPT)).collect(),
        }
    }

    fn nanos(&self, at: Instant) -> u64 {
        #[allow(clippy::cast_possible_truncation)]
        {
            at.saturating_duration_since(self.t0).as_nanos() as u64
        }
    }

    /// Records node `node`'s next expected wakeup (`None` = exempt).
    pub fn set_deadline(&self, node: usize, at: Option<Instant>) {
        let value = at.map_or(EXEMPT, |at| self.nanos(at));
        self.beats[node].store(value, Ordering::Release);
    }
}

/// The stall threshold for link delay `d`: generous against scheduling
/// jitter (tens of round trips), tight enough to catch a genuinely
/// wedged node within a sub-second run.
pub(crate) fn stall_threshold(d: Dur) -> Duration {
    Duration::from_secs_f64(d.as_secs() * 20.0).max(Duration::from_millis(50))
}

/// Spawns the watchdog thread: scans the heartbeat slots at a fraction
/// of `threshold`, counts each overdue node as a stall (against the
/// fault budget) and calls `nudge` with its index so the backend can
/// reschedule it. Exits when `stop` is set.
pub(crate) fn spawn_watchdog<F>(
    heartbeats: Arc<Heartbeats>,
    counters: Arc<Counters>,
    threshold: Duration,
    stop: Arc<AtomicBool>,
    nudge: F,
) -> std::thread::JoinHandle<()>
where
    F: Fn(usize) + Send + 'static,
{
    std::thread::Builder::new()
        .name("crusader-watchdog".into())
        .spawn(move || {
            // Poll a few times per threshold, but stay responsive to
            // `stop` even when the threshold is seconds long.
            let poll = (threshold / 4).min(Duration::from_millis(50));
            #[allow(clippy::cast_possible_truncation)]
            let threshold_ns = threshold.as_nanos() as u64;
            while !stop.load(Ordering::Acquire) {
                std::thread::sleep(poll);
                let now_ns = heartbeats.nanos(Instant::now());
                for (node, slot) in heartbeats.beats.iter().enumerate() {
                    let recorded = slot.load(Ordering::Acquire);
                    if recorded == EXEMPT || now_ns <= recorded.saturating_add(threshold_ns) {
                        continue;
                    }
                    // Move the slot forward so one stall is counted
                    // once per threshold window, even with the node
                    // still wedged; losing the race to the node itself
                    // (which just ran and re-registered) cancels the
                    // report — it was not stalled after all.
                    if slot
                        .compare_exchange(recorded, now_ns, Ordering::AcqRel, Ordering::Relaxed)
                        .is_ok()
                    {
                        counters.note_stall();
                        counters.note_fault_budget();
                        nudge(node);
                    }
                }
            }
        })
        .expect("spawn watchdog thread")
}

/// Best-effort text of a panic payload (panics carry `&str` or `String`
/// in practice; anything else gets a placeholder).
pub(crate) fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Prefix marking a chaos-injected panic drill (see
/// [`NodeEvent::PanicInject`](crate::NodeEvent)). Drill panics exercise
/// the containment/respawn machinery but are not protocol violations.
pub(crate) const INJECTED_PANIC_PREFIX: &str = "injected fault";

/// Whether a panic message is an injected drill rather than a genuine
/// handler bug.
pub(crate) fn is_injected(msg: &str) -> bool {
    msg.starts_with(INJECTED_PANIC_PREFIX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_latches_degraded_once_crossed() {
        let c = Counters::new(4); // budget ⌊3/2⌋ = 1
        c.note_panic();
        c.note_fault_budget();
        assert!(!c.snapshot().degraded, "within budget");
        c.note_stall();
        c.note_fault_budget();
        let snap = c.snapshot();
        assert!(snap.degraded, "two faults exceed a budget of one");
        assert_eq!(snap.fault_budget, 1);
        assert_eq!(snap.worker_panics, 1);
        assert_eq!(snap.stalls_detected, 1);
    }

    #[test]
    fn snapshot_reports_all_counters() {
        let c = Counters::new(9);
        c.note_respawn();
        c.note_net_retry();
        c.note_net_retry();
        c.note_net_send_failed();
        c.note_discarded(5);
        c.note_discarded(0);
        let snap = c.snapshot();
        assert_eq!(snap.worker_respawns, 1);
        assert_eq!(snap.net_retries, 2);
        assert_eq!(snap.net_sends_failed, 1);
        assert_eq!(snap.events_discarded, 5);
        assert_eq!(snap.fault_budget, 4);
        assert!(!snap.degraded);
    }

    #[test]
    fn watchdog_detects_an_overdue_deadline_and_nudges() {
        let t0 = Instant::now();
        let hb = Arc::new(Heartbeats::new(2, t0));
        let counters = Arc::new(Counters::new(8));
        let stop = Arc::new(AtomicBool::new(false));
        // Node 1's deadline is long past; node 0 is exempt.
        hb.set_deadline(1, Some(t0));
        let nudged = Arc::new(AtomicU64::new(u64::MAX));
        let watchdog = {
            let nudged = Arc::clone(&nudged);
            spawn_watchdog(
                Arc::clone(&hb),
                Arc::clone(&counters),
                Duration::from_millis(20),
                Arc::clone(&stop),
                move |node| nudged.store(node as u64, Ordering::Release),
            )
        };
        let deadline = Instant::now() + Duration::from_secs(2);
        while counters.snapshot().stalls_detected == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        stop.store(true, Ordering::Release);
        watchdog.join().unwrap();
        assert!(counters.snapshot().stalls_detected >= 1);
        assert_eq!(nudged.load(Ordering::Acquire), 1);
    }

    #[test]
    fn exempt_slots_never_stall() {
        let t0 = Instant::now() - Duration::from_secs(10);
        let hb = Arc::new(Heartbeats::new(1, t0));
        let counters = Arc::new(Counters::new(4));
        let stop = Arc::new(AtomicBool::new(false));
        let watchdog = spawn_watchdog(
            Arc::clone(&hb),
            Arc::clone(&counters),
            Duration::from_millis(10),
            Arc::clone(&stop),
            |_| panic!("nudged an exempt node"),
        );
        std::thread::sleep(Duration::from_millis(40));
        stop.store(true, Ordering::Release);
        watchdog.join().unwrap();
        assert_eq!(counters.snapshot().stalls_detected, 0);
    }

    #[test]
    fn injected_panics_are_classified() {
        assert!(is_injected("injected fault: node 3 panicked on schedule"));
        assert!(!is_injected("index out of bounds"));
        let payload: Box<dyn Any + Send> = Box::new("boom");
        assert_eq!(panic_message(&*payload), "boom");
        let payload: Box<dyn Any + Send> = Box::new(String::from("blew up"));
        assert_eq!(panic_message(&*payload), "blew up");
        let payload: Box<dyn Any + Send> = Box::new(7usize);
        assert_eq!(panic_message(&*payload), "non-string panic payload");
    }
}
