//! Wall-clock deployment runtime for `crusader` protocols.
//!
//! Where `crusader-sim` is the adversarial laboratory (deterministic,
//! model-exact, audit-enforced), this crate is the deployment path: one OS
//! thread per node, crossbeam channels as links, a delay-injecting network
//! thread enforcing `[d − u, d]` flight times, per-node emulated drifting
//! clocks, and **real ed25519 signatures** (`crusader-crypto`'s
//! `KeyRing::ed25519`).
//!
//! The same [`Automaton`](crusader_sim::Automaton) implementations run
//! unchanged in both worlds; the runtime exists to demonstrate that the
//! protocol code is genuinely runtime-agnostic and to measure end-to-end
//! behaviour with real crypto and real threads.
//!
//! Host scheduling jitter is physically indistinguishable from message
//! delay, so it effectively inflates `u`: configure millisecond-scale
//! `d`/`u` (WAN-like), not microseconds, and treat skew numbers from this
//! runtime as environment-dependent. All bound-checking experiments use
//! the simulator.
//!
//! # Example
//!
//! ```no_run
//! use std::time::Duration;
//! use crusader_core::{CpsNode, Params};
//! use crusader_runtime::{run, RuntimeConfig};
//! use crusader_time::Dur;
//!
//! let d = Dur::from_millis(5.0);
//! let u = Dur::from_millis(2.0);
//! let params = Params::max_resilience(4, d, u, 1.01);
//! let derived = params.derive().unwrap();
//! let cfg = RuntimeConfig {
//!     n: 4,
//!     silent: vec![3],
//!     d,
//!     u,
//!     theta: 1.01,
//!     max_offset: derived.s,
//!     run_for: Duration::from_millis(500),
//!     seed: 42,
//! };
//! let report = run(&cfg, |me| CpsNode::new(me, params, derived));
//! println!("delivered {} messages", report.messages_delivered);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod harness;
mod net;
mod node;

pub use clock::EmulatedClock;
pub use harness::{run, RuntimeConfig, RuntimeReport};
pub use net::NodeEvent;

#[cfg(test)]
mod tests {
    use std::time::Duration;

    use crusader_baselines::EchoSyncNode;
    use crusader_core::{CpsNode, Params};
    use crusader_crypto::NodeId;
    use crusader_sim::metrics::pulse_stats;
    use crusader_time::Dur;

    use super::*;

    #[test]
    fn cps_pulses_under_real_threads() {
        let d = Dur::from_millis(5.0);
        let u = Dur::from_millis(2.0);
        let params = Params::max_resilience(4, d, u, 1.01);
        let derived = params.derive().unwrap();
        let cfg = RuntimeConfig {
            n: 4,
            silent: vec![],
            d,
            u,
            theta: 1.01,
            max_offset: derived.s,
            run_for: Duration::from_millis(700),
            seed: 7,
        };
        let report = run(&cfg, |me| CpsNode::new(me, params, derived));
        let honest: Vec<NodeId> = NodeId::all(4).collect();
        let stats = pulse_stats(&report.trace, &honest);
        // T ≈ a few × d: several pulses must have completed.
        assert!(
            stats.complete_pulses >= 3,
            "only {} pulses: {:?}",
            stats.complete_pulses,
            report.trace.violations
        );
        // Loose sanity bound: scheduling jitter inflates u, but skew must
        // stay well under d + S.
        assert!(
            stats.max_skew < d + derived.s * 2.0,
            "skew {}",
            stats.max_skew
        );
        assert!(report.messages_delivered > 0);
    }

    #[test]
    fn cps_survives_silent_fault_live() {
        let d = Dur::from_millis(5.0);
        let u = Dur::from_millis(2.0);
        let params = Params::max_resilience(4, d, u, 1.01);
        let derived = params.derive().unwrap();
        let cfg = RuntimeConfig {
            n: 4,
            silent: vec![3],
            d,
            u,
            theta: 1.01,
            max_offset: derived.s,
            run_for: Duration::from_millis(700),
            seed: 11,
        };
        let report = run(&cfg, |me| CpsNode::new(me, params, derived));
        let honest: Vec<NodeId> = (0..3).map(NodeId::new).collect();
        let stats = pulse_stats(&report.trace, &honest);
        assert!(stats.complete_pulses >= 3, "{:?}", report.trace.violations);
    }

    #[test]
    fn echo_sync_runs_on_the_runtime_too() {
        let d = Dur::from_millis(5.0);
        let u = Dur::from_millis(2.0);
        let cfg = RuntimeConfig {
            n: 4,
            silent: vec![],
            d,
            u,
            theta: 1.001,
            max_offset: Dur::from_millis(2.0),
            run_for: Duration::from_millis(600),
            seed: 3,
        };
        let report = run(&cfg, |me| {
            EchoSyncNode::new(me, 4, 1, Dur::from_millis(50.0))
        });
        let honest: Vec<NodeId> = NodeId::all(4).collect();
        let stats = pulse_stats(&report.trace, &honest);
        assert!(stats.complete_pulses >= 2);
    }
}
