//! Wall-clock deployment runtime for `crusader` protocols.
//!
//! Where `crusader-sim` is the adversarial laboratory (deterministic,
//! model-exact, audit-enforced), this crate is the deployment path:
//! crossbeam channels as links, a delay-injecting network thread
//! enforcing `[d − u, d]` flight times, per-node emulated drifting
//! clocks, and **real ed25519 signatures** (`crusader-crypto`'s
//! `KeyRing::ed25519`).
//!
//! Two executors drive the nodes, selected by [`RuntimeConfig::backend`]:
//!
//! * [`Backend::Threads`] — one OS thread per node, blocking on its
//!   inbox with the next timer deadline as the wait bound. Simple,
//!   latency-faithful, and fine to a few hundred nodes.
//! * [`Backend::Reactor`] — an event-driven worker-pool reactor: N node
//!   state machines multiplexed as non-blocking tasks onto M long-lived
//!   worker threads, with per-node inboxes, a ready-queue scheduler that
//!   parks idle workers, and a hashed [timer wheel](wheel) multiplexing
//!   all `SetTimer` deadlines through one timer thread. This is the
//!   scale path: thousands of nodes on a handful of threads.
//!
//! Both backends drive the **same protocol core** per node (the same
//! handler dispatch, timer bookkeeping, and pulse logging — see
//! `src/node.rs`), so they differ only in scheduling, and a test suite
//! holds them to the same model bounds.
//!
//! The same [`Automaton`](crusader_sim::Automaton) implementations run
//! unchanged in both worlds; the runtime exists to demonstrate that the
//! protocol code is genuinely runtime-agnostic and to measure end-to-end
//! behaviour with real crypto and real threads.
//!
//! Host scheduling jitter is physically indistinguishable from message
//! delay, so it effectively inflates `u`: configure millisecond-scale
//! `d`/`u` (WAN-like), not microseconds, and treat skew numbers from this
//! runtime as environment-dependent. (On the reactor backend the timer
//! wheel's tick granularity — at most `u/64`, clamped to `[50 µs, 1 ms]`
//! — adds to the same budget.) All bound-checking experiments use the
//! simulator.
//!
//! # Example
//!
//! ```no_run
//! use std::time::Duration;
//! use crusader_core::{CpsNode, Params};
//! use crusader_runtime::{run, Backend, RuntimeConfig};
//! use crusader_time::Dur;
//!
//! let d = Dur::from_millis(5.0);
//! let u = Dur::from_millis(2.0);
//! let params = Params::max_resilience(4, d, u, 1.01);
//! let derived = params.derive().unwrap();
//! let cfg = RuntimeConfig {
//!     n: 4,
//!     silent: vec![3],
//!     d,
//!     u,
//!     theta: 1.01,
//!     max_offset: derived.s,
//!     run_for: Duration::from_millis(500),
//!     seed: 42,
//!     backend: Backend::Reactor,
//!     workers: None, // available_parallelism()
//!     ..RuntimeConfig::new(4)
//! };
//! let report = run(&cfg, |me| CpsNode::new(me, params, derived));
//! println!("delivered {} messages", report.messages_delivered);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod harness;
mod net;
mod node;
mod reactor;
mod supervise;
pub mod wheel;

pub use clock::EmulatedClock;
pub use harness::{run, Backend, RuntimeConfig, RuntimeReport};
pub use net::NodeEvent;
pub use supervise::SupervisionStats;

#[cfg(test)]
mod tests {
    use std::time::Duration;

    use crusader_baselines::EchoSyncNode;
    use crusader_core::{CpsNode, Params};
    use crusader_crypto::NodeId;
    use crusader_sim::metrics::pulse_stats;
    use crusader_time::Dur;

    use super::*;

    fn cps_cfg(backend: Backend, silent: Vec<usize>, seed: u64) -> (RuntimeConfig, Params) {
        let d = Dur::from_millis(5.0);
        let u = Dur::from_millis(2.0);
        let params = Params::max_resilience(4, d, u, 1.01);
        let derived = params.derive().unwrap();
        let cfg = RuntimeConfig {
            n: 4,
            silent,
            d,
            u,
            theta: 1.01,
            max_offset: derived.s,
            run_for: Duration::from_millis(700),
            seed,
            backend,
            workers: None,
            chaos: None,
            observer: None,
        };
        (cfg, params)
    }

    fn assert_cps_pulses(cfg: &RuntimeConfig, params: Params, honest_n: usize) {
        let derived = params.derive().unwrap();
        let report = run(cfg, |me| CpsNode::new(me, params, derived));
        let honest: Vec<NodeId> = (0..honest_n).map(NodeId::new).collect();
        let stats = pulse_stats(&report.trace, &honest);
        // T ≈ a few × d: several pulses must have completed.
        assert!(
            stats.complete_pulses >= 3,
            "only {} pulses on {:?}: {:?}",
            stats.complete_pulses,
            cfg.backend,
            report.trace.violations
        );
        // Loose sanity bound: scheduling jitter inflates u, but skew must
        // stay well under d + S.
        assert!(
            stats.max_skew < cfg.d + derived.s * 2.0,
            "skew {} on {:?}",
            stats.max_skew,
            cfg.backend
        );
        assert!(report.messages_delivered > 0);
    }

    #[test]
    fn cps_pulses_under_real_threads() {
        let (cfg, params) = cps_cfg(Backend::Threads, vec![], 7);
        assert_cps_pulses(&cfg, params, 4);
    }

    #[test]
    fn cps_pulses_under_the_reactor() {
        let (cfg, params) = cps_cfg(Backend::Reactor, vec![], 7);
        assert_cps_pulses(&cfg, params, 4);
    }

    #[test]
    fn cps_survives_silent_fault_live() {
        let (cfg, params) = cps_cfg(Backend::Threads, vec![3], 11);
        assert_cps_pulses(&cfg, params, 3);
    }

    #[test]
    fn cps_survives_silent_fault_on_the_reactor() {
        let (cfg, params) = cps_cfg(Backend::Reactor, vec![3], 11);
        assert_cps_pulses(&cfg, params, 3);
    }

    #[test]
    fn reactor_with_one_worker_still_pulses() {
        let (mut cfg, params) = cps_cfg(Backend::Reactor, vec![], 13);
        cfg.workers = Some(1);
        assert_cps_pulses(&cfg, params, 4);
    }

    #[test]
    fn echo_sync_runs_on_the_runtime_too() {
        let d = Dur::from_millis(5.0);
        let u = Dur::from_millis(2.0);
        for backend in [Backend::Threads, Backend::Reactor] {
            let cfg = RuntimeConfig {
                n: 4,
                silent: vec![],
                d,
                u,
                theta: 1.001,
                max_offset: Dur::from_millis(2.0),
                run_for: Duration::from_millis(600),
                seed: 3,
                backend,
                workers: None,
                chaos: None,
                observer: None,
            };
            let report = run(&cfg, |me| {
                EchoSyncNode::new(me, 4, 1, Dur::from_millis(50.0))
            });
            let honest: Vec<NodeId> = NodeId::all(4).collect();
            let stats = pulse_stats(&report.trace, &honest);
            assert!(stats.complete_pulses >= 2, "backend {backend}");
        }
    }

    #[test]
    fn backend_parses_and_displays() {
        assert_eq!("threads".parse::<Backend>().unwrap(), Backend::Threads);
        assert_eq!("reactor".parse::<Backend>().unwrap(), Backend::Reactor);
        assert!("tokio".parse::<Backend>().is_err());
        assert_eq!(Backend::Reactor.to_string(), "reactor");
        assert_eq!(Backend::default(), Backend::Threads);
    }
}
