//! The resilience boundary (experiment E3 as a test): signatures buy
//! exactly the gap between `⌈n/3⌉ − 1` and `⌈n/2⌉ − 1`.
//!
//! Under the time-equivocation (stagger) attack with adversarially split
//! clock rates, Lynch–Welch converges below `n/3` faults and diverges at
//! `⌈n/3⌉`; CPS shrugs the equivalent attack off all the way to
//! `⌈n/2⌉ − 1`.

use crusader::baselines::{LwNode, TickStagger};
use crusader::core::adversary::StaggeredDealer;
use crusader::core::{max_faults_with_signatures, max_faults_without_signatures, CpsNode, Params};
use crusader::crypto::NodeId;
use crusader::sim::metrics::pulse_stats;
use crusader::sim::{DelayModel, SimBuilder};
use crusader::time::drift::DriftModel;
use crusader::time::{Dur, Time};

fn params(n: usize, f: usize) -> Params {
    Params {
        f,
        ..Params::max_resilience(n, Dur::from_millis(1.0), Dur::from_micros(10.0), 1.003)
    }
}

/// Runs a protocol under its matching stagger attack; returns
/// (early skew, late skew, bound S, violations).
fn lw_under_attack(n: usize, f: usize, pulses: u64) -> (Dur, Dur, Dur, usize) {
    let p = params(n, f);
    let derived = p.derive().unwrap();
    let faulty: Vec<usize> = (n - f..n).collect();
    let trace = SimBuilder::new(n)
        .faulty(faulty.clone())
        .link(p.d, p.u)
        .delays(DelayModel::Random)
        .drift(DriftModel::ExtremalSplit, p.theta, derived.s)
        .seed(5)
        .horizon(Time::from_secs(240.0))
        .max_pulses(pulses)
        .build(
            |me| LwNode::new(me, p, derived),
            Box::new(TickStagger::new(Dur::from_micros(300.0))),
        )
        .run();
    let honest: Vec<NodeId> = (0..n - f).map(NodeId::new).collect();
    let stats = pulse_stats(&trace, &honest);
    assert_eq!(stats.complete_pulses, pulses as usize, "LW liveness");
    (
        stats.skews[4],
        stats.skews[pulses as usize - 1],
        derived.s,
        trace.violations.len(),
    )
}

fn cps_under_attack(n: usize, f: usize, pulses: u64) -> (Dur, Dur) {
    let p = params(n, f);
    let derived = p.derive().unwrap();
    let faulty: Vec<usize> = (n - f..n).collect();
    let trace = SimBuilder::new(n)
        .faulty(faulty)
        .link(p.d, p.u)
        .delays(DelayModel::Random)
        .drift(DriftModel::ExtremalSplit, p.theta, derived.s)
        .seed(5)
        .horizon(Time::from_secs(240.0))
        .max_pulses(pulses)
        .build(
            |me| CpsNode::new(me, p, derived),
            Box::new(StaggeredDealer::new(Dur::from_micros(300.0))),
        )
        .run();
    let honest: Vec<NodeId> = (0..n - f).map(NodeId::new).collect();
    let stats = pulse_stats(&trace, &honest);
    assert_eq!(stats.complete_pulses, pulses as usize, "CPS liveness");
    assert!(trace.violations.is_empty(), "{:?}", trace.violations);
    (stats.max_skew, derived.s)
}

#[test]
fn bounds_are_the_papers() {
    assert_eq!(max_faults_without_signatures(6), 1);
    assert_eq!(max_faults_with_signatures(6), 2);
    assert_eq!(max_faults_without_signatures(12), 3);
    assert_eq!(max_faults_with_signatures(12), 5);
}

#[test]
fn lynch_welch_converges_below_one_third() {
    // n = 7, f = 2 < ⌈7/3⌉ = 3.
    let (early, late, s, violations) = lw_under_attack(7, 2, 40);
    assert_eq!(violations, 0);
    assert!(late <= s, "late skew {late} above S {s}");
    // Converged: the late skew is noise-level (well below the bound), not
    // a growing drift like the at-n/3 case below.
    assert!(
        late < s / 2.0 && early < s / 2.0,
        "skew should stay noise-level below n/3: {early} → {late} (S = {s})"
    );
}

#[test]
fn lynch_welch_diverges_at_one_third() {
    // n = 6, f = 2 = ⌈6/3⌉: the impossibility bites.
    let (early, late, s, _) = lw_under_attack(6, 2, 40);
    assert!(
        late > early && late > s,
        "expected divergence at n/3: early {early}, late {late}, S {s}"
    );
}

#[test]
fn cps_holds_at_one_third_and_beyond() {
    // Same fault fractions that break LW are routine for CPS.
    for (n, f) in [(6, 2), (7, 3), (9, 4)] {
        let (skew, s) = cps_under_attack(n, f, 40);
        assert!(
            skew <= s,
            "CPS at n={n}, f={f}: skew {skew} above S {s}"
        );
    }
}

#[test]
fn cps_rejects_overbudget_f_at_derive_time() {
    let p = params(6, 3); // ⌈6/2⌉ − 1 = 2 < 3
    assert!(p.derive().is_err());
}
