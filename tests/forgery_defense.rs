//! The signature assumption, attacked: adversaries that try to forge,
//! replay stale rounds, or use signatures before learning them. The
//! engine's knowledge gate (the model's well-formedness rule) plus the
//! protocol's round tagging must neutralize all of it.

use crusader::core::{pulse_sign_bytes, Carry, CpsNode, Params};
use crusader::crypto::{NodeId, Signature};
use crusader::sim::metrics::pulse_stats;
use crusader::sim::{Adversary, AdversaryApi, DelayModel, SimBuilder};
use crusader::time::drift::DriftModel;
use crusader::time::{Dur, Time};

fn params() -> Params {
    Params::max_resilience(5, Dur::from_millis(1.0), Dur::from_micros(15.0), 1.0002)
}

fn run_with(adv: Box<dyn Adversary<Carry>>, pulses: u64) -> (crusader::sim::Trace, Params) {
    let p = params();
    let derived = p.derive().unwrap();
    let trace = SimBuilder::new(p.n)
        .faulty([3, 4])
        .link(p.d, p.u)
        .delays(DelayModel::Random)
        .drift(DriftModel::RandomStable, p.theta, derived.s)
        .seed(23)
        .horizon(Time::from_secs(120.0))
        .max_pulses(pulses)
        .build(|me| CpsNode::new(me, p, derived), adv)
        .run();
    (trace, p)
}

/// Tries to send a Carry for an honest dealer with a fabricated
/// signature tag — blocked by the knowledge gate before verification
/// even matters.
struct Fabricator {
    fired: bool,
}

impl Adversary<Carry> for Fabricator {
    fn on_deliver(
        &mut self,
        _to: NodeId,
        _from: NodeId,
        msg: &Carry,
        api: &mut AdversaryApi<'_, Carry>,
    ) {
        if self.fired {
            return;
        }
        self.fired = true;
        // Forge: honest dealer 0, made-up signature, current round.
        api.send_as(
            NodeId::new(3),
            NodeId::new(1),
            Carry {
                round: msg.round,
                dealer: NodeId::new(0),
                signature: Signature::Symbolic(0xBAD),
            },
        );
    }
}

#[test]
fn fabricated_signatures_are_blocked_by_the_gate() {
    let (trace, p) = run_with(Box::new(Fabricator { fired: false }), 6);
    assert_eq!(trace.forgeries_blocked, 1);
    let honest: Vec<NodeId> = (0..3).map(NodeId::new).collect();
    let stats = pulse_stats(&trace, &honest);
    assert_eq!(stats.complete_pulses, 6);
    assert!(stats.max_skew <= p.derive().unwrap().s);
}

/// Replays *learned* round-r signatures during round r+1 — allowed by
/// the gate (the adversary really does know them) but useless against
/// the protocol's round tagging.
struct StaleReplayer {
    stash: Vec<Carry>,
}

impl Adversary<Carry> for StaleReplayer {
    fn on_deliver(
        &mut self,
        _to: NodeId,
        from: NodeId,
        msg: &Carry,
        api: &mut AdversaryApi<'_, Carry>,
    ) {
        if from == msg.dealer && !api.corrupted().contains(&msg.dealer) {
            // New honest round signature observed: replay everything we
            // stashed from previous rounds at every honest node.
            let stale: Vec<Carry> = self
                .stash
                .iter()
                .filter(|c| c.round < msg.round)
                .cloned()
                .collect();
            for carry in stale {
                for v in NodeId::all(api.n()) {
                    if !api.corrupted().contains(&v) {
                        api.send_as(NodeId::new(4), v, carry.clone());
                    }
                }
            }
            self.stash.push(msg.clone());
        }
    }
}

#[test]
fn stale_round_replays_are_ignored_by_round_tagging() {
    let (trace, p) = run_with(
        Box::new(StaleReplayer { stash: Vec::new() }),
        8,
    );
    // Replays are legal (learned) — nothing blocked...
    assert_eq!(trace.forgeries_blocked, 0);
    // ...and nothing gained.
    let honest: Vec<NodeId> = (0..3).map(NodeId::new).collect();
    let stats = pulse_stats(&trace, &honest);
    assert_eq!(stats.complete_pulses, 8);
    assert!(trace.violations.is_empty(), "{:?}", trace.violations);
    assert!(stats.max_skew <= p.derive().unwrap().s);
}

/// Signs future rounds with the *corrupted* nodes' own keys (always
/// allowed) and floods them early — outside every honest acceptance
/// window, so instances for those dealers go ⊥ and get absorbed by the
/// discard rule.
struct FutureSpammer {
    done: bool,
}

impl Adversary<Carry> for FutureSpammer {
    fn on_init(&mut self, api: &mut AdversaryApi<'_, Carry>) {
        if self.done {
            return;
        }
        self.done = true;
        for round in 1..=20u64 {
            for z in [NodeId::new(3), NodeId::new(4)] {
                let sig = api.signer().sign_as(z, &pulse_sign_bytes(round, z));
                for v in NodeId::all(api.n()) {
                    if !api.corrupted().contains(&v) {
                        api.send_as(
                            z,
                            v,
                            Carry {
                                round,
                                dealer: z,
                                signature: sig.clone(),
                            },
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn early_future_round_floods_only_bot_their_own_instances() {
    let (trace, p) = run_with(Box::new(FutureSpammer { done: false }), 8);
    assert_eq!(trace.forgeries_blocked, 0);
    let honest: Vec<NodeId> = (0..3).map(NodeId::new).collect();
    let stats = pulse_stats(&trace, &honest);
    assert_eq!(stats.complete_pulses, 8);
    assert!(
        stats.max_skew <= p.derive().unwrap().s,
        "skew {}",
        stats.max_skew
    );
    assert!(trace.violations.is_empty(), "{:?}", trace.violations);
}

/// Cross-round signature confusion: sends round-r signatures labelled as
/// round r+1 (the Carry's round field lies about what was signed). The
/// knowledge gate blocks it first — the adversary learned the claim
/// "signed bytes(r)", not "signed bytes(r+1)" — and even if it passed,
/// verification would catch the byte mismatch.
struct LabelLiar;

impl Adversary<Carry> for LabelLiar {
    fn on_deliver(
        &mut self,
        _to: NodeId,
        from: NodeId,
        msg: &Carry,
        api: &mut AdversaryApi<'_, Carry>,
    ) {
        if from != msg.dealer || api.corrupted().contains(&msg.dealer) {
            return;
        }
        // Mislabel the (learned, genuine) signature as next round's.
        let lie = Carry {
            round: msg.round + 1,
            dealer: msg.dealer,
            signature: msg.signature.clone(),
        };
        for v in NodeId::all(api.n()) {
            if !api.corrupted().contains(&v) {
                api.send_as(NodeId::new(3), v, lie.clone());
            }
        }
    }
}

#[test]
fn mislabelled_signatures_fail_verification() {
    let (trace, p) = run_with(Box::new(LabelLiar), 8);
    // The gate treats the relabelled claim as unlearned.
    assert!(trace.forgeries_blocked > 0);
    let honest: Vec<NodeId> = (0..3).map(NodeId::new).collect();
    let stats = pulse_stats(&trace, &honest);
    assert_eq!(stats.complete_pulses, 8);
    // Every recorded violation is the gate doing its job; none may come
    // from the protocol itself.
    assert!(
        trace
            .violations
            .iter()
            .all(|v| v.starts_with("blocked forgery")),
        "unexpected protocol violation"
    );
    assert!(stats.max_skew <= p.derive().unwrap().s);
}
