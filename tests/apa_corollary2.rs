//! Corollary 2 as an integration test: iterated APA reaches
//! `ε`-consistency from range `ℓ` in `2⌈log₂(ℓ/ε)⌉` rounds, with
//! resilience `⌈n/2⌉ − 1` — including under equivocating and extreme-value
//! Byzantine dealers (which, without signatures, would require `n > 3f`).

use crusader::core::cb::{cb_sign_bytes, SignedValue};
use crusader::core::{iterations_for, ApaMsg, ApaNode};
use crusader::crypto::{KeyRing, NodeId};
use crusader::sim::synchronous::{run_rounds, RushingAdversary, SilentRushing};

fn build(
    n: usize,
    f: usize,
    iterations: usize,
    inputs: &[f64],
    faulty: &[usize],
    ring: &KeyRing,
) -> Vec<Option<ApaNode>> {
    (0..n)
        .map(|i| {
            if faulty.contains(&i) {
                None
            } else {
                let me = NodeId::new(i);
                Some(ApaNode::new(
                    me,
                    n,
                    f,
                    iterations,
                    inputs[i],
                    ring.signer(me),
                    ring.verifier(),
                ))
            }
        })
        .collect()
}

fn spread(outs: &[Option<f64>]) -> f64 {
    let vals: Vec<f64> = outs.iter().filter_map(|o| *o).collect();
    let min = vals.iter().cloned().fold(f64::MAX, f64::min);
    let max = vals.iter().cloned().fold(f64::MIN, f64::max);
    max - min
}

/// The strongest value-level adversary available to corrupted dealers:
/// per iteration, each faulty dealer signs *two* different values and
/// sends one to each half of the system (crusader consistency must turn
/// this into ⊥ everywhere), while also echoing honestly to stay
/// plausible.
struct TwoFaced {
    ring: KeyRing,
    faulty: Vec<NodeId>,
    n: usize,
}

impl RushingAdversary<ApaMsg> for TwoFaced {
    fn round(
        &mut self,
        round: usize,
        _honest: &[(NodeId, NodeId, ApaMsg)],
    ) -> Vec<(NodeId, NodeId, ApaMsg)> {
        if round % 2 != 0 {
            return Vec::new();
        }
        let iteration = round / 2;
        let adv = self
            .ring
            .restricted_signer(self.faulty.iter().copied().collect());
        let mut out = Vec::new();
        for z in &self.faulty {
            for to in NodeId::all(self.n) {
                let value = if to.index() % 2 == 0 { -1e12 } else { 1e12 };
                let sig = adv.sign_as(
                    *z,
                    &cb_sign_bytes(ApaNode::session(iteration, *z), *z, &value),
                );
                out.push((
                    *z,
                    to,
                    ApaMsg::Deal(SignedValue {
                        value,
                        signature: sig.clone(),
                    }),
                ));
            }
        }
        out
    }
}

#[test]
fn corollary_2_round_count_fault_free() {
    // ℓ = 64, ε = 1 → 6 iterations = 12 rounds.
    let ring = KeyRing::symbolic(4, 1);
    let inputs = [0.0, 21.0, 42.0, 64.0];
    let iters = iterations_for(64.0, 1.0);
    assert_eq!(iters, 6);
    let nodes = build(4, 1, iters, &inputs, &[], &ring);
    let run = run_rounds(nodes, &mut SilentRushing, 2 * iters);
    assert_eq!(run.rounds_used, 12);
    assert!(spread(&run.outputs) <= 1.0 + 1e-9);
}

#[test]
fn epsilon_consistency_across_scales() {
    for (ell, eps) in [(10.0, 1.0), (1000.0, 0.5), (3.0, 0.01)] {
        let ring = KeyRing::symbolic(5, 2);
        let inputs = [0.0, ell / 4.0, ell / 2.0, 0.0, ell];
        let iters = iterations_for(ell, eps);
        let nodes = build(5, 2, iters, &inputs, &[], &ring);
        let run = run_rounds(nodes, &mut SilentRushing, 2 * iters + 2);
        assert!(
            spread(&run.outputs) <= eps + 1e-9,
            "ℓ={ell}, ε={eps}: spread {}",
            spread(&run.outputs)
        );
    }
}

#[test]
fn max_resilience_under_two_faced_dealers() {
    // n = 7, f = 3 = ⌈7/2⌉ − 1: double the signature-free limit.
    let ring = KeyRing::symbolic(7, 3);
    let inputs = [5.0, 6.0, 8.0, 9.0, 0.0, 0.0, 0.0];
    let mut adv = TwoFaced {
        ring: ring.clone(),
        faulty: vec![NodeId::new(4), NodeId::new(5), NodeId::new(6)],
        n: 7,
    };
    let iters = 5;
    let nodes = build(7, 3, iters, &inputs, &[4, 5, 6], &ring);
    let run = run_rounds(nodes, &mut adv, 2 * iters);
    // Validity: outputs within honest input range [5, 9].
    for i in 0..4 {
        let v = run.outputs[i].unwrap();
        assert!((5.0..=9.0).contains(&v), "node {i}: {v}");
    }
    // Consistency: halved five times from ℓ = 4.
    assert!(
        spread(&run.outputs) <= 4.0 / 32.0 + 1e-9,
        "spread {}",
        spread(&run.outputs)
    );
}

#[test]
fn larger_systems_converge() {
    for n in [9usize, 15, 21] {
        let f = n.div_ceil(2) - 1;
        let ring = KeyRing::symbolic(n, n as u64);
        let inputs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let faulty: Vec<usize> = (n - f..n).collect();
        let iters = 4;
        let nodes = build(n, f, iters, &inputs, &faulty, &ring);
        let run = run_rounds(nodes, &mut SilentRushing, 2 * iters);
        let honest_max = (n - f - 1) as f64;
        let expect = honest_max / 16.0;
        assert!(
            spread(&run.outputs) <= expect + 1e-9,
            "n={n}: spread {} > {expect}",
            spread(&run.outputs)
        );
        for i in 0..n - f {
            let v = run.outputs[i].unwrap();
            assert!((0.0..=honest_max).contains(&v), "node {i}: {v}");
        }
    }
}
