//! Integration grid for Theorem 17: across system sizes, fault loads,
//! delay/drift regimes and adversarial delay policies, CPS keeps
//! liveness, skew ≤ S, and periods within [(T − (θ+1)S)/θ, T + 3S].

use crusader::core::{CpsNode, Params};
use crusader::crypto::NodeId;
use crusader::sim::metrics::pulse_stats;
use crusader::sim::{DelayModel, SilentAdversary, SimBuilder};
use crusader::time::drift::DriftModel;
use crusader::time::{Dur, Time};

struct Case {
    name: &'static str,
    n: usize,
    faulty: Vec<usize>,
    d_us: f64,
    u_us: f64,
    theta: f64,
    delays: DelayModel,
    drift: DriftModel,
}

fn run_case(case: &Case, pulses: u64, seed: u64) {
    let params = Params::max_resilience(
        case.n,
        Dur::from_micros(case.d_us),
        Dur::from_micros(case.u_us),
        case.theta,
    );
    let derived = params.derive().unwrap_or_else(|e| panic!("{}: {e}", case.name));
    let trace = SimBuilder::new(case.n)
        .faulty(case.faulty.iter().copied())
        .link(params.d, params.u)
        .delays(case.delays.clone())
        .drift(case.drift.clone(), params.theta, derived.s)
        .seed(seed)
        .horizon(Time::from_secs(300.0))
        .max_pulses(pulses)
        .build(
            |me| CpsNode::new(me, params, derived),
            Box::new(SilentAdversary),
        )
        .run();
    let honest: Vec<NodeId> = NodeId::all(case.n)
        .filter(|v| !case.faulty.contains(&v.index()))
        .collect();
    let stats = pulse_stats(&trace, &honest);
    assert_eq!(
        stats.complete_pulses, pulses as usize,
        "{}: liveness failed ({:?})",
        case.name, trace.violations
    );
    assert!(
        trace.violations.is_empty(),
        "{}: violations {:?}",
        case.name,
        trace.violations
    );
    assert!(
        stats.max_skew <= derived.s,
        "{}: skew {} > S {}",
        case.name,
        stats.max_skew,
        derived.s
    );
    let tol = Dur::from_nanos(1.0);
    assert!(
        stats.min_period + tol >= derived.p_min,
        "{}: Pmin {} < {}",
        case.name,
        stats.min_period,
        derived.p_min
    );
    assert!(
        stats.max_period <= derived.p_max + tol,
        "{}: Pmax {} > {}",
        case.name,
        stats.max_period,
        derived.p_max
    );
}

#[test]
fn small_system_fault_free() {
    run_case(
        &Case {
            name: "n=2 fault-free",
            n: 2,
            faulty: vec![],
            d_us: 1000.0,
            u_us: 10.0,
            theta: 1.0001,
            delays: DelayModel::Random,
            drift: DriftModel::OffsetsOnly,
        },
        10,
        1,
    );
}

#[test]
fn three_nodes_one_fault() {
    run_case(
        &Case {
            name: "n=3 f=1",
            n: 3,
            faulty: vec![2],
            d_us: 1000.0,
            u_us: 10.0,
            theta: 1.0001,
            delays: DelayModel::Extremal,
            drift: DriftModel::ExtremalSplit,
        },
        12,
        2,
    );
}

#[test]
fn nine_nodes_four_faults_worst_drift() {
    run_case(
        &Case {
            name: "n=9 f=4 extremal",
            n: 9,
            faulty: vec![0, 2, 4, 6], // interleaved faulty positions
            d_us: 1000.0,
            u_us: 50.0,
            theta: 1.0005,
            delays: DelayModel::Tilted,
            drift: DriftModel::ExtremalSplit,
        },
        12,
        3,
    );
}

#[test]
fn sixteen_nodes_seven_faults() {
    run_case(
        &Case {
            name: "n=16 f=7",
            n: 16,
            faulty: (9..16).collect(),
            d_us: 1000.0,
            u_us: 20.0,
            theta: 1.0002,
            delays: DelayModel::Random,
            drift: DriftModel::RandomStable,
        },
        8,
        4,
    );
}

#[test]
fn tiny_delay_fast_clocks() {
    run_case(
        &Case {
            name: "rack-scale, big theta",
            n: 5,
            faulty: vec![4],
            d_us: 50.0,
            u_us: 1.0,
            theta: 1.02,
            delays: DelayModel::Extremal,
            drift: DriftModel::ExtremalSplit,
        },
        15,
        5,
    );
}

#[test]
fn wan_scale_delays() {
    run_case(
        &Case {
            name: "WAN 80ms",
            n: 7,
            faulty: vec![5, 6],
            d_us: 80_000.0,
            u_us: 3_000.0,
            theta: 1.0002,
            delays: DelayModel::Random,
            drift: DriftModel::Wander {
                interval: Dur::from_millis(500.0),
                pieces: 8,
            },
        },
        8,
        6,
    );
}

#[test]
fn wandering_clocks_many_seeds() {
    for seed in 10..16 {
        run_case(
            &Case {
                name: "wander sweep",
                n: 6,
                faulty: vec![5],
                d_us: 1000.0,
                u_us: 25.0,
                theta: 1.001,
                delays: DelayModel::Random,
                drift: DriftModel::Wander {
                    interval: Dur::from_millis(5.0),
                    pieces: 32,
                },
            },
            10,
            seed,
        );
    }
}

#[test]
fn min_delays_give_geometric_convergence() {
    // With exact minimum delays and rate-1 clocks the offset estimates
    // are exact, so the skew halves every round until it is dominated by
    // nothing at all.
    let n = 4;
    let params = Params::max_resilience(
        n,
        Dur::from_millis(1.0),
        Dur::from_micros(10.0),
        1.0001,
    );
    let derived = params.derive().unwrap();
    let trace = SimBuilder::new(n)
        .link(params.d, params.u)
        .delays(DelayModel::MinAlways)
        .drift(DriftModel::OffsetsOnly, params.theta, derived.s)
        .seed(1)
        .horizon(Time::from_secs(60.0))
        .max_pulses(12)
        .build(
            |me| CpsNode::new(me, params, derived),
            Box::new(SilentAdversary),
        )
        .run();
    let honest: Vec<NodeId> = NodeId::all(n).collect();
    let stats = pulse_stats(&trace, &honest);
    assert_eq!(stats.complete_pulses, 12);
    let first = stats.skews[0];
    let last = stats.skews[11];
    assert!(
        last < first / 100.0,
        "expected geometric convergence: first {first}, last {last}"
    );
}
