//! Property-based tests over randomized model configurations: for *any*
//! legal combination of delays, drift, seeds and fault placement, CPS
//! must satisfy Definition 3 (liveness, S-bounded skew, period bounds).

use crusader::core::{CpsNode, Params};
use crusader::crypto::NodeId;
use crusader::sim::metrics::pulse_stats;
use crusader::sim::{DelayModel, SilentAdversary, SimBuilder};
use crusader::time::drift::DriftModel;
use crusader::time::{Dur, Time};
use proptest::prelude::*;

fn delay_model() -> impl Strategy<Value = DelayModel> {
    prop_oneof![
        Just(DelayModel::Random),
        Just(DelayModel::MinAlways),
        Just(DelayModel::MaxAlways),
        Just(DelayModel::Extremal),
        Just(DelayModel::Tilted),
    ]
}

fn drift_model() -> impl Strategy<Value = DriftModel> {
    prop_oneof![
        Just(DriftModel::Perfect),
        Just(DriftModel::OffsetsOnly),
        Just(DriftModel::ExtremalSplit),
        Just(DriftModel::RandomStable),
        Just(DriftModel::Wander {
            interval: Dur::from_millis(2.0),
            pieces: 16,
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, // each case is a full multi-pulse simulation
        ..ProptestConfig::default()
    })]

    /// Definition 3 holds across the legal parameter space.
    #[test]
    fn cps_satisfies_definition_3(
        n in 3usize..10,
        fault_seed in 0u64..1000,
        u_us in 1.0f64..200.0,
        theta_exp in -5.0f64..-1.5, // θ − 1 ∈ [10^-5, 10^-1.5]
        delays in delay_model(),
        drift in drift_model(),
        seed in 0u64..10_000,
    ) {
        let theta = 1.0 + 10f64.powf(theta_exp);
        let d = Dur::from_millis(1.0);
        let u = Dur::from_micros(u_us);
        let f_max = crusader::core::max_faults_with_signatures(n);
        // Pseudo-random fault placement with 0..=f_max faults.
        let f = (fault_seed as usize) % (f_max + 1);
        let faulty: Vec<usize> = (0..n)
            .map(|i| (i * 2654435761 + fault_seed as usize) % n)
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .take(f)
            .collect();
        let params = Params { n, f: f_max, d, u, theta };
        let derived = params.derive().expect("feasible by construction");
        let trace = SimBuilder::new(n)
            .faulty(faulty.iter().copied())
            .link(d, u)
            .delays(delays)
            .drift(drift, theta, derived.s)
            .seed(seed)
            .horizon(Time::from_secs(120.0))
            .max_pulses(6)
            .build(
                |me| CpsNode::new(me, params, derived),
                Box::new(SilentAdversary),
            )
            .run();
        let honest: Vec<NodeId> = NodeId::all(n)
            .filter(|v| !faulty.contains(&v.index()))
            .collect();
        let stats = pulse_stats(&trace, &honest);
        // Liveness.
        prop_assert_eq!(stats.complete_pulses, 6, "violations: {:?}", trace.violations);
        prop_assert!(trace.violations.is_empty(), "{:?}", trace.violations);
        // S-bounded skew.
        prop_assert!(
            stats.max_skew <= derived.s,
            "skew {} > S {} (n={}, f={}, u={}µs, θ={})",
            stats.max_skew, derived.s, n, f, u_us, theta
        );
        // Period bounds.
        let tol = Dur::from_nanos(1.0);
        prop_assert!(stats.min_period + tol >= derived.p_min);
        prop_assert!(stats.max_period <= derived.p_max + tol);
    }

    /// Parameter derivation is monotone: more uncertainty or more drift
    /// can never shrink the required skew bound.
    #[test]
    fn derived_s_is_monotone(
        u1 in 1.0f64..100.0,
        du in 0.0f64..100.0,
        t1 in -5.0f64..-1.6,
        dt in 0.0f64..0.1,
    ) {
        let d = Dur::from_millis(1.0);
        let mk = |u_us: f64, t_exp: f64| {
            Params::max_resilience(4, d, Dur::from_micros(u_us), 1.0 + 10f64.powf(t_exp))
                .derive()
                .unwrap()
        };
        let base = mk(u1, t1);
        let more_u = mk(u1 + du, t1);
        prop_assert!(more_u.s >= base.s);
        let t2 = (t1 + dt).min(-1.6);
        let more_t = mk(u1, t2);
        prop_assert!(more_t.s >= base.s - Dur::from_nanos(1.0));
    }

    /// The feasibility polynomial agrees with derive() everywhere.
    #[test]
    fn feasibility_consistent_with_derive(theta in 1.0001f64..1.3) {
        let p = Params::max_resilience(
            4,
            Dur::from_millis(1.0),
            Dur::from_micros(10.0),
            theta,
        );
        let feasible = Params::feasibility(theta) > 0.0;
        prop_assert_eq!(p.derive().is_ok(), feasible);
    }
}
