//! Offline stand-in for `proptest`: the macro and strategy surface this
//! workspace's property tests use, implemented as plain random testing.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case panics immediately with the
//!   generated inputs embedded in the panic message (every generated
//!   binding is formatted into the failure report), instead of being
//!   minimized first.
//! * **Deterministic seeding.** Each test function derives its RNG seed
//!   from its own name, so runs are reproducible without a persistence
//!   file. Set `PROPTEST_SEED=<u64>` to try a different universe.
//! * `ProptestConfig` carries only the fields this workspace reads
//!   (`cases`, `max_global_rejects`).
//!
//! See `vendor/README.md` for the full stub inventory.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// A strategy producing `Vec`s whose elements come from `element`
    /// and whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy::new(element, size.into())
    }
}

pub mod arbitrary {
    //! The [`Arbitrary`] trait: types with a canonical strategy.

    use crate::strategy::{Strategy, TestRng};

    /// Types with a canonical "any value" strategy, produced by
    /// [`any`](crate::prelude::any).
    pub trait Arbitrary: Sized {
        /// Samples an arbitrary value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_ints {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            rng.unit_f64()
        }
    }

    /// The strategy returned by [`any`](crate::prelude::any).
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T: Arbitrary + std::fmt::Debug> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The canonical strategy for `T`.
    #[must_use]
    pub fn any<T: Arbitrary + std::fmt::Debug>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

pub mod prelude {
    //! Everything a property test needs in scope.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Asserts a condition inside a property test.
///
/// In this stand-in it is a plain `assert!`: failure panics with the
/// condition and the generated inputs (the harness adds them to the
/// message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property test (plain `assert_eq!` here).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// Asserts inequality inside a property test (plain `assert_ne!` here).
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*);
    };
}

/// Rejects the current case, drawing a fresh one, when `cond` is false.
///
/// Must appear inside a `proptest!` body (it returns the harness's
/// rejection sentinel).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return $crate::test_runner::CaseOutcome::Reject;
        }
    };
}

/// Picks uniformly among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strategy) ),+
        ])
    };
}

/// Declares property-test functions.
///
/// Supports the real macro's common form: an optional
/// `#![proptest_config(..)]` header followed by `fn` items whose
/// arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng =
                    $crate::strategy::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                let mut accepted: u32 = 0;
                let mut rejected: u32 = 0;
                while accepted < config.cases {
                    // Generate into a tuple first so the bindings below
                    // can be arbitrary patterns (e.g. `mut xs`) while the
                    // failure report still shows every generated value.
                    let __case = ( $( $crate::strategy::Strategy::generate(&($strategy), &mut rng), )+ );
                    let __inputs = format!(
                        concat!("(", $(stringify!($arg), ", ",)+ ") = {:?}"),
                        __case
                    );
                    let ( $($arg,)+ ) = __case;
                    let outcome = $crate::test_runner::run_case(__inputs, move || {
                        $body
                        $crate::test_runner::CaseOutcome::Pass
                    });
                    match outcome {
                        $crate::test_runner::CaseOutcome::Pass => accepted += 1,
                        $crate::test_runner::CaseOutcome::Reject => {
                            rejected += 1;
                            assert!(
                                rejected <= config.max_global_rejects,
                                "proptest stand-in: too many prop_assume rejections ({}) in {}",
                                rejected,
                                stringify!($name)
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}
