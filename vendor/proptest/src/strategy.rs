//! Strategies: composable random-value generators.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

pub use crate::test_runner::TestRng;

/// A generator of values for property tests.
///
/// The real crate's `Strategy` carries a shrinking value tree; this
/// stand-in only generates, so the trait is a single method plus
/// [`boxed`](Strategy::boxed) for heterogeneous unions.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Erases the strategy's concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: std::rc::Rc::new(self),
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A type-erased strategy (cheap to clone).
#[derive(Clone)]
pub struct BoxedStrategy<T> {
    inner: std::rc::Rc<dyn Strategy<Value = T>>,
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among several strategies of the same value type
/// (backs `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `arms` is empty.
    #[must_use]
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.usize_in(0, self.arms.len());
        self.arms[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return (lo as i128 + rng.next_u64() as i128) as $t;
                }
                (lo as i128 + (rng.next_u64() % (span + 1)) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        (lo + unit * (hi - lo)).clamp(lo, hi)
    }
}

/// Length specification for [`collection::vec`](crate::collection::vec).
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

/// Strategy producing vectors (see
/// [`collection::vec`](crate::collection::vec)).
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> VecStrategy<S> {
    pub(crate) fn new(element: S, size: SizeRange) -> Self {
        VecStrategy { element, size }
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.usize_in(self.size.lo, self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_unions() {
        let mut rng = TestRng::for_test("vendor::strategy::tests");
        for _ in 0..1_000 {
            let x = (3usize..10).generate(&mut rng);
            assert!((3..10).contains(&x));
            let y = (-5.0f64..-1.5).generate(&mut rng);
            assert!((-5.0..-1.5).contains(&y));
            let z = (1.0f64..=2.0).generate(&mut rng);
            assert!((1.0..=2.0).contains(&z));
        }
        let union = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(union.generate(&mut rng));
        }
        assert_eq!(seen.len(), 2);
    }

    #[test]
    fn vec_strategy_len_bounds() {
        let mut rng = TestRng::for_test("vendor::strategy::vec");
        let strat = crate::collection::vec(0u8..=255, 1..4);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }
}
