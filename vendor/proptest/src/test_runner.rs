//! Configuration, RNG, and per-case plumbing for the `proptest!` macro.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// Configuration for a `proptest!` block (the fields this workspace
/// uses; construct with struct-update syntax over `default()`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases required per test.
    pub cases: u32,
    /// Cap on total `prop_assume!` rejections before the test errors.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Outcome of a single generated case.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CaseOutcome {
    /// The body ran to completion.
    Pass,
    /// `prop_assume!` rejected the inputs; draw a fresh case.
    Reject,
}

/// Deterministic RNG driving every strategy in one test function.
#[derive(Clone, Debug)]
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// An RNG seeded from the test's fully qualified name (stable across
    /// runs) combined with the optional `PROPTEST_SEED` env var.
    #[must_use]
    pub fn for_test(name: &str) -> Self {
        let mut seed: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        if let Ok(extra) = std::env::var("PROPTEST_SEED") {
            if let Ok(v) = extra.trim().parse::<u64>() {
                seed ^= v.rotate_left(32);
            }
        }
        TestRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }
}

/// Runs one generated case, attaching the generated inputs to any panic.
pub fn run_case<F>(inputs: String, body: F) -> CaseOutcome
where
    F: FnOnce() -> CaseOutcome,
{
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(body)) {
        Ok(outcome) => outcome,
        Err(payload) => {
            eprintln!("proptest stand-in: failing case (no shrinking): {inputs}");
            std::panic::resume_unwind(payload);
        }
    }
}
