//! Offline stand-in for `criterion`: the macro/type surface the bench
//! targets use, backed by a simple wall-clock timer instead of
//! criterion's statistical machinery. Each benchmark runs a warmup
//! iteration and then `sample_size` timed samples; mean/min/max are
//! printed in a criterion-like format. See `vendor/README.md`.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Number of timed samples when the caller does not override it.
const DEFAULT_SAMPLE_SIZE: usize = 10;

/// Benchmark driver handed to `criterion_group!` targets.
pub struct Criterion {
    sample_size: usize,
    /// `--test` / `cargo test` mode: run everything exactly once to
    /// prove it executes, skip timing.
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                "--bench" | "--quiet" | "-q" | "--noplot" => {}
                a if a.starts_with('-') => {}
                a => filter = Some(a.to_string()),
            }
        }
        Criterion {
            sample_size: DEFAULT_SAMPLE_SIZE,
            test_mode,
            filter,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(id, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }

    fn run_one<F>(&mut self, id: &str, f: &mut F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let samples = if self.test_mode { 1 } else { self.sample_size };
        let mut bencher = Bencher {
            samples,
            times: Vec::with_capacity(samples),
        };
        f(&mut bencher);
        if self.test_mode {
            println!("test {id} ... ok");
            return;
        }
        report(id, &bencher.times);
    }
}

fn report(id: &str, times: &[Duration]) {
    if times.is_empty() {
        println!("{id:<40} (no samples)");
        return;
    }
    let total: Duration = times.iter().sum();
    let mean = total / times.len() as u32;
    let min = times.iter().min().copied().unwrap_or_default();
    let max = times.iter().max().copied().unwrap_or_default();
    println!(
        "{id:<40} time: [{} {} {}]  ({} samples)",
        fmt_dur(min),
        fmt_dur(mean),
        fmt_dur(max),
        times.len()
    );
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = Some(n);
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        let saved = self.criterion.sample_size;
        if let Some(n) = self.sample_size {
            self.criterion.sample_size = n;
        }
        self.criterion.run_one(&full, &mut f);
        self.criterion.sample_size = saved;
        self
    }

    /// Runs a parameterized benchmark inside the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (kept for API parity; nothing to flush here).
    pub fn finish(self) {}
}

/// Identifier for a (possibly parameterized) benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id built from a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id that is just the parameter's textual form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into the textual id used in reports.
pub trait IntoBenchmarkId {
    /// The textual id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Timing harness passed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    times: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, running one untimed warmup then `sample_size`
    /// timed samples.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.times.push(start.elapsed());
        }
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion {
            sample_size: 3,
            test_mode: false,
            filter: None,
        };
        let mut runs = 0;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        // 1 warmup + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn group_overrides_sample_size() {
        let mut c = Criterion {
            sample_size: 50,
            test_mode: false,
            filter: None,
        };
        let mut runs = 0;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(2);
            g.bench_with_input(BenchmarkId::from_parameter(1), &1, |b, _| {
                b.iter(|| runs += 1);
            });
            g.finish();
        }
        assert_eq!(runs, 3);
        assert_eq!(c.sample_size, 50);
    }
}
