//! Offline API-shaped stand-in for `ed25519-dalek`.
//!
//! **This is not ed25519.** The build environment is hermetic (no
//! crates.io), so this crate mimics the `ed25519-dalek` v2 type surface —
//! [`SigningKey`], [`VerifyingKey`], [`Signature`], the [`Signer`] trait,
//! 32-byte secrets, 64-byte signatures — over a deterministic keyed-hash
//! MAC built from splitmix64 mixing. It gives the workspace's runtime and
//! benches real *moving parts* (keys, signing, strict verification,
//! tamper rejection) with zero cryptographic strength. Swap the real
//! crate back in per `vendor/README.md` before trusting any signature.

use std::fmt;

/// Length of a secret key seed in bytes.
pub const SECRET_KEY_LENGTH: usize = 32;
/// Length of a public key in bytes.
pub const PUBLIC_KEY_LENGTH: usize = 32;
/// Length of a signature in bytes.
pub const SIGNATURE_LENGTH: usize = 64;

/// Error produced by failed verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignatureError;

impl fmt::Display for SignatureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "signature verification failed")
    }
}

impl std::error::Error for SignatureError {}

/// Deterministic 64-byte keyed hash (splitmix64 sponge over 8 lanes).
///
/// Not collision-resistant against an adaptive adversary; deterministic
/// and avalanche-mixing, which is all the test suite observes.
fn keyed_hash64(key: &[u8; 32], domain: u64, msg: &[u8]) -> [u8; 64] {
    fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    let mut lanes = [0u64; 8];
    for (i, lane) in lanes.iter_mut().enumerate() {
        let k = u64::from_le_bytes(key[(i % 4) * 8..(i % 4) * 8 + 8].try_into().unwrap());
        *lane = mix(k ^ domain ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    }
    for (pos, &byte) in msg.iter().enumerate() {
        let lane = pos % 8;
        lanes[lane] = mix(
            lanes[lane]
                ^ u64::from(byte).wrapping_mul(0xFF51_AFD7_ED55_8CCD)
                ^ (pos as u64).rotate_left(17),
        );
    }
    // Finalization: cross-mix the lanes so every output byte depends on
    // every input byte.
    for round in 0..3 {
        for i in 0..8 {
            lanes[i] = mix(lanes[i] ^ lanes[(i + 1) % 8].rotate_left(29) ^ round);
        }
    }
    let mut out = [0u8; 64];
    for (i, lane) in lanes.iter().enumerate() {
        out[i * 8..i * 8 + 8].copy_from_slice(&lane.to_le_bytes());
    }
    out
}

/// A detached signature (64 bytes, same width as real ed25519).
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Signature {
    bytes: [u8; SIGNATURE_LENGTH],
}

impl Signature {
    /// Reconstructs a signature from its 64-byte encoding.
    #[must_use]
    pub fn from_bytes(bytes: &[u8; SIGNATURE_LENGTH]) -> Self {
        Signature { bytes: *bytes }
    }

    /// The 64-byte encoding.
    #[must_use]
    pub fn to_bytes(&self) -> [u8; SIGNATURE_LENGTH] {
        self.bytes
    }
}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.bytes {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

/// Objects capable of signing messages (mirrors `signature::Signer`).
pub trait Signer<S> {
    /// Signs `msg`.
    fn sign(&self, msg: &[u8]) -> S;
}

/// Objects capable of verifying signatures (mirrors
/// `signature::Verifier`).
pub trait Verifier<S> {
    /// Verifies `signature` over `msg`.
    ///
    /// # Errors
    ///
    /// Returns [`SignatureError`] when the signature does not verify.
    fn verify(&self, msg: &[u8], signature: &S) -> Result<(), SignatureError>;
}

/// An ed25519-shaped signing key.
#[derive(Clone)]
pub struct SigningKey {
    secret: [u8; SECRET_KEY_LENGTH],
}

impl SigningKey {
    /// Builds the key from a 32-byte secret seed.
    #[must_use]
    pub fn from_bytes(secret: &[u8; SECRET_KEY_LENGTH]) -> Self {
        SigningKey { secret: *secret }
    }

    /// The 32-byte secret seed.
    #[must_use]
    pub fn to_bytes(&self) -> [u8; SECRET_KEY_LENGTH] {
        self.secret
    }

    /// Derives the matching verification key.
    #[must_use]
    pub fn verifying_key(&self) -> VerifyingKey {
        let digest = keyed_hash64(&self.secret, 0x7075_626b_6579, b"verifying-key");
        let mut public = [0u8; PUBLIC_KEY_LENGTH];
        public.copy_from_slice(&digest[..32]);
        VerifyingKey {
            public,
            // The MAC construction needs the secret on the verifying
            // side; real ed25519 does not. This is the stand-in's one
            // structural divergence, invisible through the public API.
            secret: self.secret,
        }
    }
}

impl fmt::Debug for SigningKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print the secret.
        write!(f, "SigningKey(..)")
    }
}

impl Signer<Signature> for SigningKey {
    fn sign(&self, msg: &[u8]) -> Signature {
        Signature {
            bytes: keyed_hash64(&self.secret, 0x7369_676e, msg),
        }
    }
}

/// An ed25519-shaped verification key.
#[derive(Clone)]
pub struct VerifyingKey {
    public: [u8; PUBLIC_KEY_LENGTH],
    secret: [u8; SECRET_KEY_LENGTH],
}

impl VerifyingKey {
    /// The 32-byte public encoding.
    #[must_use]
    pub fn to_bytes(&self) -> [u8; PUBLIC_KEY_LENGTH] {
        self.public
    }

    /// Strict verification (constant shape with `ed25519-dalek`'s
    /// `verify_strict`): recomputes the MAC and compares.
    ///
    /// # Errors
    ///
    /// Returns [`SignatureError`] when the signature does not verify.
    pub fn verify_strict(&self, msg: &[u8], signature: &Signature) -> Result<(), SignatureError> {
        let expect = keyed_hash64(&self.secret, 0x7369_676e, msg);
        if expect == signature.bytes {
            Ok(())
        } else {
            Err(SignatureError)
        }
    }
}

impl fmt::Debug for VerifyingKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VerifyingKey(")?;
        for b in &self.public {
            write!(f, "{b:02x}")?;
        }
        write!(f, ")")
    }
}

impl Verifier<Signature> for VerifyingKey {
    fn verify(&self, msg: &[u8], signature: &Signature) -> Result<(), SignatureError> {
        self.verify_strict(msg, signature)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(tag: u8) -> SigningKey {
        SigningKey::from_bytes(&[tag; 32])
    }

    #[test]
    fn roundtrip() {
        let sk = key(1);
        let sig = sk.sign(b"msg");
        assert!(sk.verifying_key().verify_strict(b"msg", &sig).is_ok());
    }

    #[test]
    fn wrong_key_message_or_bitflip_rejected() {
        let sk = key(1);
        let sig = sk.sign(b"msg");
        assert!(key(2).verifying_key().verify_strict(b"msg", &sig).is_err());
        assert!(sk.verifying_key().verify_strict(b"msh", &sig).is_err());
        for i in [0usize, 5, 31, 32, 63] {
            let mut bytes = sig.to_bytes();
            bytes[i] ^= 0x01;
            let tampered = Signature::from_bytes(&bytes);
            assert!(sk.verifying_key().verify_strict(b"msg", &tampered).is_err());
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(key(3).sign(b"x").to_bytes(), key(3).sign(b"x").to_bytes());
    }
}
