//! Offline stand-in for `serde`: the `Serialize`/`Deserialize` trait
//! names plus no-op derive macros, enough for types annotated with
//! `#[derive(Serialize, Deserialize)]` and `#[serde(...)]` attributes to
//! compile. No data format is vendored, so nothing actually serializes;
//! see `vendor/README.md` for how to restore the real crate.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
///
/// The vendored derive does not implement it; it exists so code with
/// `T: Serialize` bounds (none in this workspace today) still names a
/// real trait.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

/// Marker trait standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

/// Stand-in for the `serde::de` module namespace.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// Stand-in for the `serde::ser` module namespace.
pub mod ser {
    pub use crate::Serialize;
}
