//! Offline stand-in for `crossbeam`, providing the `channel` module the
//! runtime and simulator use. See `vendor/README.md`.

pub mod channel {
    //! Multi-producer, **multi-consumer** channels with deadline-aware
    //! receives (the subset of `crossbeam-channel` this workspace uses).
    //!
    //! Like the real crate — and unlike `std::sync::mpsc` — both halves
    //! are cloneable: several worker threads can share one `Receiver`,
    //! which is exactly how the runtime's reactor backend feeds its
    //! worker pool from a single ready queue. Implemented as a
    //! `Mutex<VecDeque>` plus a `Condvar`; consumers park on the condvar
    //! when the queue is empty and are woken per-push.

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::send_timeout`], handing the message
    /// back to the caller either way (matching `crossbeam-channel`).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum SendTimeoutError<T> {
        /// The timeout elapsed with the bounded queue still full.
        Timeout(T),
        /// All receivers disconnected.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by deadline/timeout receives.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The deadline passed with no message available.
        Timeout,
        /// All senders disconnected and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message was queued.
        Empty,
        /// All senders disconnected and the queue is drained.
        Disconnected,
    }

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
        /// Receivers currently parked on the condvar; senders skip the
        /// notify syscall when nobody is waiting.
        waiters: usize,
        /// Capacity bound (`None` for unbounded channels).
        cap: Option<usize>,
        /// Senders currently parked waiting for queue space (bounded
        /// channels only).
        space_waiters: usize,
    }

    struct Chan<T> {
        inner: Mutex<Inner<T>>,
        ready: Condvar,
        /// Senders park here when a bounded queue is full.
        space: Condvar,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.inner.lock().expect("channel poisoned").senders += 1;
            Sender {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.chan.inner.lock().expect("channel poisoned");
            inner.senders -= 1;
            if inner.senders == 0 && inner.waiters > 0 {
                // Wake every parked receiver so it can observe the
                // disconnect.
                drop(inner);
                self.chan.ready.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends `msg`, failing only if every receiver has been dropped.
        /// On a bounded channel this blocks while the queue is full.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut inner = self.chan.inner.lock().expect("channel poisoned");
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(msg));
                }
                if inner.cap.is_none_or(|c| inner.queue.len() < c) {
                    inner.queue.push_back(msg);
                    let wake = inner.waiters > 0;
                    drop(inner);
                    if wake {
                        self.chan.ready.notify_one();
                    }
                    return Ok(());
                }
                inner.space_waiters += 1;
                inner = self.chan.space.wait(inner).expect("channel poisoned");
                inner.space_waiters -= 1;
            }
        }

        /// Sends `msg`, giving up (and handing the message back) if a
        /// bounded queue stays full for `timeout`. On an unbounded
        /// channel this never times out.
        pub fn send_timeout(&self, msg: T, timeout: Duration) -> Result<(), SendTimeoutError<T>> {
            let deadline = Instant::now() + timeout;
            let mut inner = self.chan.inner.lock().expect("channel poisoned");
            loop {
                if inner.receivers == 0 {
                    return Err(SendTimeoutError::Disconnected(msg));
                }
                if inner.cap.is_none_or(|c| inner.queue.len() < c) {
                    inner.queue.push_back(msg);
                    let wake = inner.waiters > 0;
                    drop(inner);
                    if wake {
                        self.chan.ready.notify_one();
                    }
                    return Ok(());
                }
                let now = Instant::now();
                let Some(remaining) = deadline.checked_duration_since(now).filter(|d| !d.is_zero())
                else {
                    return Err(SendTimeoutError::Timeout(msg));
                };
                inner.space_waiters += 1;
                let (guard, _timed_out) = self
                    .chan
                    .space
                    .wait_timeout(inner, remaining)
                    .expect("channel poisoned");
                inner = guard;
                inner.space_waiters -= 1;
            }
        }
    }

    /// The receiving half of an unbounded channel. Cloneable: clones
    /// share the queue, and each message is received exactly once.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.inner.lock().expect("channel poisoned").receivers += 1;
            Receiver {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.chan.inner.lock().expect("channel poisoned");
            inner.receivers -= 1;
            if inner.receivers == 0 && inner.space_waiters > 0 {
                // Wake every parked sender so it can observe the
                // disconnect.
                drop(inner);
                self.chan.space.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Wakes one parked sender after a pop freed bounded-queue space.
        fn pop_wake(&self, inner: std::sync::MutexGuard<'_, Inner<T>>, msg: T) -> T {
            let wake_space = inner.cap.is_some() && inner.space_waiters > 0;
            drop(inner);
            if wake_space {
                self.chan.space.notify_one();
            }
            msg
        }

        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.chan.inner.lock().expect("channel poisoned");
            loop {
                if let Some(msg) = inner.queue.pop_front() {
                    return Ok(self.pop_wake(inner, msg));
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner.waiters += 1;
                inner = self.chan.ready.wait(inner).expect("channel poisoned");
                inner.waiters -= 1;
            }
        }

        /// Blocks until a message arrives, all senders disconnect, or
        /// `timeout` elapses.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.recv_deadline(Instant::now() + timeout)
        }

        /// Blocks until a message arrives, all senders disconnect, or
        /// `deadline` passes. Anything already queued is drained before
        /// a timeout is reported, like crossbeam does.
        pub fn recv_deadline(&self, deadline: Instant) -> Result<T, RecvTimeoutError> {
            let mut inner = self.chan.inner.lock().expect("channel poisoned");
            loop {
                if let Some(msg) = inner.queue.pop_front() {
                    return Ok(self.pop_wake(inner, msg));
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                let Some(remaining) = deadline.checked_duration_since(now).filter(|d| !d.is_zero())
                else {
                    return Err(RecvTimeoutError::Timeout);
                };
                inner.waiters += 1;
                let (guard, _timed_out) = self
                    .chan
                    .ready
                    .wait_timeout(inner, remaining)
                    .expect("channel poisoned");
                inner = guard;
                inner.waiters -= 1;
            }
        }

        /// Receives without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.chan.inner.lock().expect("channel poisoned");
            if let Some(msg) = inner.queue.pop_front() {
                return Ok(self.pop_wake(inner, msg));
            }
            if inner.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }
    }

    fn channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
                waiters: 0,
                cap,
                space_waiters: 0,
            }),
            ready: Condvar::new(),
            space: Condvar::new(),
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    /// Creates an unbounded channel.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        channel(None)
    }

    /// Creates a bounded channel: `send` blocks while `cap` messages are
    /// queued, `send_timeout` gives up after its timeout. Zero-capacity
    /// rendezvous channels are not supported by this stand-in.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    #[must_use]
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap > 0, "rendezvous channels are not supported");
        channel(Some(cap))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(7).unwrap();
            assert_eq!(rx.recv(), Ok(7));
        }

        #[test]
        fn deadline_in_past_still_drains() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            let past = Instant::now() - Duration::from_millis(5);
            assert_eq!(rx.recv_deadline(past), Ok(1));
            assert_eq!(rx.recv_deadline(past), Err(RecvTimeoutError::Timeout));
        }

        #[test]
        fn disconnect_reported() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn cloned_receivers_share_the_queue() {
            let (tx, rx1) = unbounded();
            let rx2 = rx1.clone();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx1.recv(), Ok(1));
            assert_eq!(rx2.recv(), Ok(2));
        }

        #[test]
        fn multi_consumer_across_threads() {
            let (tx, rx) = unbounded::<u32>();
            let consumers: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    std::thread::spawn(move || {
                        let mut got = Vec::new();
                        while let Ok(v) = rx.recv() {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            drop(rx);
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let mut all: Vec<u32> = consumers
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect();
            all.sort_unstable();
            assert_eq!(all, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn send_fails_with_no_receivers() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }

        #[test]
        fn bounded_send_timeout_reports_full_queue() {
            let (tx, rx) = bounded::<u8>(2);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(
                tx.send_timeout(3, Duration::from_millis(5)),
                Err(SendTimeoutError::Timeout(3))
            );
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(tx.send_timeout(3, Duration::from_millis(5)), Ok(()));
        }

        #[test]
        fn bounded_send_blocks_until_space() {
            let (tx, rx) = bounded::<u8>(1);
            tx.send(1).unwrap();
            let sender = std::thread::spawn(move || tx.send(2));
            std::thread::sleep(Duration::from_millis(10));
            assert_eq!(rx.recv(), Ok(1));
            sender.join().unwrap().unwrap();
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn send_timeout_reports_disconnect() {
            let (tx, rx) = bounded::<u8>(1);
            drop(rx);
            assert_eq!(
                tx.send_timeout(9, Duration::from_millis(5)),
                Err(SendTimeoutError::Disconnected(9))
            );
        }

        #[test]
        fn dropping_receiver_wakes_blocked_sender() {
            let (tx, rx) = bounded::<u8>(1);
            tx.send(1).unwrap();
            let sender = std::thread::spawn(move || tx.send(2));
            std::thread::sleep(Duration::from_millis(10));
            drop(rx);
            assert_eq!(sender.join().unwrap(), Err(SendError(2)));
        }

        #[test]
        fn timeout_when_empty_and_senders_alive() {
            let (tx, rx) = unbounded::<u8>();
            let deadline = Instant::now() + Duration::from_millis(10);
            assert_eq!(rx.recv_deadline(deadline), Err(RecvTimeoutError::Timeout));
            drop(tx);
        }
    }
}
