//! Offline stand-in for `crossbeam`, providing the `channel` module the
//! runtime uses, layered over `std::sync::mpsc`. See `vendor/README.md`.

pub mod channel {
    //! Multi-producer, single-consumer channels with deadline-aware
    //! receives (the subset of `crossbeam-channel` the runtime uses).

    use std::sync::mpsc;
    use std::time::{Duration, Instant};

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by deadline/timeout receives.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The deadline passed with no message available.
        Timeout,
        /// All senders disconnected and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message was queued.
        Empty,
        /// All senders disconnected and the queue is drained.
        Disconnected,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends `msg`, failing only if the receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.inner.send(msg).map_err(|mpsc::SendError(m)| SendError(m))
        }
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Blocks until a message arrives, all senders disconnect, or
        /// `timeout` elapses.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Blocks until a message arrives, all senders disconnect, or
        /// `deadline` passes.
        pub fn recv_deadline(&self, deadline: Instant) -> Result<T, RecvTimeoutError> {
            let now = Instant::now();
            if deadline <= now {
                // Drain anything already queued before reporting timeout,
                // like crossbeam does.
                return match self.inner.try_recv() {
                    Ok(m) => Ok(m),
                    Err(mpsc::TryRecvError::Empty) => Err(RecvTimeoutError::Timeout),
                    Err(mpsc::TryRecvError::Disconnected) => Err(RecvTimeoutError::Disconnected),
                };
            }
            self.recv_timeout(deadline - now)
        }

        /// Receives without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }

    /// Creates an unbounded channel.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(7).unwrap();
            assert_eq!(rx.recv(), Ok(7));
        }

        #[test]
        fn deadline_in_past_still_drains() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            let past = Instant::now() - Duration::from_millis(5);
            assert_eq!(rx.recv_deadline(past), Ok(1));
            assert_eq!(rx.recv_deadline(past), Err(RecvTimeoutError::Timeout));
        }

        #[test]
        fn disconnect_reported() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }
    }
}
