//! Offline stand-in for the `rand` crate: the `Rng`/`SeedableRng`
//! surface the simulator and runtime use, with a deterministic
//! xoshiro256++ generator behind `rngs::SmallRng`.
//!
//! Determinism is a *requirement* here, not a convenience: the simulator
//! promises identical executions for identical seeds, so `SmallRng` is
//! fully specified by `seed_from_u64` (splitmix64 key expansion, then
//! xoshiro256++). See `vendor/README.md`.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// A generator constructible from a small seed.
pub trait SeedableRng: Sized {
    /// Builds the generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Samples a value from the generator's uniform distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples uniformly from the range; panics if it is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! signed_sample_range {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return (lo as i128 + rng.next_u64() as i128) as $t;
                }
                (lo as i128 + (rng.next_u64() % (span + 1)) as i128) as $t
            }
        }
    )*};
}
signed_sample_range!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f64::sample_standard(rng);
        let v = self.start + unit * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        // 53-bit fraction in [0, 1] inclusive.
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        (lo + unit * (hi - lo)).clamp(lo, hi)
    }
}

/// Destinations usable with [`Rng::fill`].
pub trait Fill {
    /// Overwrites `self` with random data.
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

impl<const N: usize> Fill for [u8; N] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

/// High-level sampling methods, blanket-implemented for every bit source.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range`; panics if it is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        f64::sample_standard(self) < p
    }

    /// Fills `dest` with random data.
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T) {
        dest.fill_from(self);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    ///
    /// Seeded via splitmix64 exactly as specified by the xoshiro
    /// reference implementation, so a given seed yields the same stream
    /// on every platform — the property the simulator's reproducibility
    /// guarantees rest on.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// The standard generator; aliased to [`SmallRng`] in this stand-in.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(2.0..3.0);
            assert!((2.0..3.0).contains(&x));
            let y: f64 = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&y));
            let n: usize = rng.gen_range(3..10);
            assert!((3..10).contains(&n));
            let m: u64 = rng.gen_range(0..=5);
            assert!(m <= 5);
        }
    }

    #[test]
    fn unit_interval_and_bool() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut trues = 0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            if rng.gen_bool(0.5) {
                trues += 1;
            }
        }
        assert!((3_000..7_000).contains(&trues));
    }

    #[test]
    fn fill_covers_arrays_and_slices() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut arr = [0u8; 32];
        rng.fill(&mut arr);
        assert!(arr.iter().any(|&b| b != 0));
        let mut vec = vec![0u8; 13];
        rng.fill(&mut vec[..]);
        assert!(vec.iter().any(|&b| b != 0));
    }
}
