//! No-op `Serialize`/`Deserialize` derive macros for the vendored serde
//! stand-in. They accept (and discard) `#[serde(...)]` helper attributes
//! so annotated types compile; no serialization code is generated because
//! no data-format backend is vendored. See `vendor/README.md`.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (and `#[serde(...)]` attributes) and
/// expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (and `#[serde(...)]` attributes) and
/// expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
