//! Offline stand-in for `parking_lot`, layered over `std::sync`.
//!
//! Matches the `parking_lot` API shape the workspace uses: `lock()`
//! returns the guard directly (no `Result`), and a panicked holder does
//! not poison the lock for later users. See `vendor/README.md`.

use std::fmt;
use std::sync::PoisonError;

/// A mutual-exclusion primitive (over `std::sync::Mutex`).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// A reader-writer lock (over `std::sync::RwLock`).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn no_poisoning() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
