//! Offline stand-in for the `bytes` crate: a cheaply clonable, immutable
//! byte container. See `vendor/README.md`.

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable, immutable contiguous slice of memory.
///
/// Backed by `Arc<[u8]>`; `clone` is a reference-count bump, matching the
/// real crate's cost model for the operations this workspace performs.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    #[must_use]
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Creates `Bytes` from a static byte slice without copying semantics
    /// the caller can observe.
    #[must_use]
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes { data: bytes.into() }
    }

    /// Creates `Bytes` by copying an arbitrary slice.
    #[must_use]
    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        Bytes { data: bytes.into() }
    }

    /// Length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the container is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The contents as a plain slice.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(v: &[u8; N]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_eq() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b, Bytes::from(&[1u8, 2, 3][..]));
        let c = b.clone();
        assert_eq!(b, c);
    }
}
